package datacell

// Engine-level coverage of partitioned windowed execution: sharded
// time-windowed aggregates produce the same result sets as a single
// pipeline under out-of-order event time, late tuples are counted and
// surfaced, fallbacks stay on one pipeline, and teardown is complete.

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/vector"
)

// newWindowedPair returns two engines with stream s (k INT, g INT, v
// INT, et INT) — one sharded 4 ways by k, one unpartitioned — for
// flat-vs-sharded comparison of event-time windowed queries.
func newWindowedPair(t *testing.T) (part, flat *Engine) {
	t.Helper()
	ctx := context.Background()
	part = New(Config{Clock: metrics.NewManualClock(1_000_000)})
	flat = New(Config{Clock: metrics.NewManualClock(1_000_000)})
	if _, err := part.Exec(ctx, "CREATE BASKET s (k INT, g INT, v INT, et INT) WITH (partitions = 4, partition_by = k)"); err != nil {
		t.Fatal(err)
	}
	if _, err := flat.Exec(ctx, "CREATE BASKET s (k INT, g INT, v INT, et INT)"); err != nil {
		t.Fatal(err)
	}
	return part, flat
}

// windowedRows generates count tuples with bounded out-of-order event
// time (each tuple trails the running maximum by less than lateness),
// followed by a closing tail that advances every shard's event time far
// enough to seal all earlier windows.
func windowedRows(rng *rand.Rand, count int, lateness int64) [][]vector.Value {
	var rows [][]vector.Value
	et := int64(0)
	block := []int64{}
	flush := func() {
		rng.Shuffle(len(block), func(i, j int) { block[i], block[j] = block[j], block[i] })
		for _, ts := range block {
			rows = append(rows, []vector.Value{
				vector.NewInt(int64(rng.Intn(32))), // k: partition key
				vector.NewInt(int64(rng.Intn(5))),  // g: non-aligned group
				vector.NewInt(int64(rng.Intn(40) - 10)),
				vector.NewInt(ts),
			})
		}
		block = block[:0]
	}
	blockStart := int64(0)
	for i := 0; i < count; i++ {
		et += int64(rng.Intn(4))
		if et-blockStart >= lateness {
			flush()
			blockStart = et
		}
		block = append(block, et)
	}
	flush()
	// Closing tail: every key 0..31 gets a tuple far in the future, so
	// each shard's own stream (and the group watermark) passes the last
	// data window.
	for k := int64(0); k < 32; k++ {
		rows = append(rows, []vector.Value{
			vector.NewInt(k), vector.NewInt(0), vector.NewInt(0), vector.NewInt(et + 10_000),
		})
	}
	return rows
}

// runWindowedCompare registers the query on both engines, ingests the
// same rows, drains with window flushes, and compares the output
// multisets. Returns the partitioned query for further assertions.
func runWindowedCompare(t *testing.T, query string, rows [][]vector.Value) *Query {
	t.Helper()
	ctx := context.Background()
	part, flat := newWindowedPair(t)
	for _, e := range []*Engine{part, flat} {
		if _, err := e.Exec(ctx, query); err != nil {
			t.Fatal(err)
		}
	}
	qp, err := part.Query("q")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []*Engine{part, flat} {
		if err := e.Ingest(ctx, "s", rows); err != nil {
			t.Fatal(err)
		}
		// Drain, then flush so shard frontiers republish against the final
		// group watermark, then drain the unblocked merges.
		e.Drain()
		if err := e.FlushWindows(); err != nil {
			t.Fatal(err)
		}
		e.Drain()
	}
	got := sortedRows(t, drainOut(t, part, "q"))
	want := sortedRows(t, drainOut(t, flat, "q"))
	if len(want) == 0 {
		t.Fatal("flat engine produced nothing")
	}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("partitioned (%d rows) != flat (%d rows)\npartitioned = %v\nflat = %v",
			len(got), len(want), got, want)
	}
	if lag := qp.MergeLag(); lag != 0 {
		t.Errorf("merge lag = %d after drain", lag)
	}
	return qp
}

// TestPartitionedWindowedAlignedMatchesFlat: a GROUP BY on the partition
// column runs sharded with per-shard-final windows (concat merge) and
// matches the flat engine under out-of-order event time.
func TestPartitionedWindowedAlignedMatchesFlat(t *testing.T) {
	const query = `CREATE CONTINUOUS QUERY q WITH (polling = true, timestamp = et, lateness = 64) AS
		SELECT x.k, COUNT(*) AS c, SUM(x.v) AS sv, AVG(x.v) AS av
		FROM [SELECT * FROM s] AS x GROUP BY x.k WINDOW RANGE 256 SLIDE 128`
	rows := windowedRows(rand.New(rand.NewSource(5)), 900, 64)
	qp := runWindowedCompare(t, query, rows)
	if qp.Shards() != 4 || !qp.Partitioned() {
		t.Fatalf("shards = %d, partitioned = %v (windowed aligned should shard)", qp.Shards(), qp.Partitioned())
	}
	if late := qp.LateTuples(); late != 0 {
		t.Errorf("late = %d under bounded disorder", late)
	}
	if wm, ok := qp.Watermark(); !ok || wm <= 0 {
		t.Errorf("watermark = %d, %v", wm, ok)
	}
}

// TestPartitionedWindowedReaggMatchesFlat: grouping NOT aligned with the
// partition key — shards emit per-window partials, the windowed merge
// re-aggregates each window across shards.
func TestPartitionedWindowedReaggMatchesFlat(t *testing.T) {
	queries := map[string]string{
		"grouped": `CREATE CONTINUOUS QUERY q WITH (polling = true, timestamp = et, lateness = 64) AS
			SELECT x.g, COUNT(*) AS c, SUM(x.v) AS sv, MIN(x.v) AS mn, MAX(x.v) AS mx
			FROM [SELECT * FROM s] AS x GROUP BY x.g WINDOW RANGE 256 SLIDE 128`,
		"having": `CREATE CONTINUOUS QUERY q WITH (polling = true, timestamp = et, lateness = 64) AS
			SELECT x.g, COUNT(*) AS c FROM [SELECT * FROM s] AS x
			GROUP BY x.g HAVING COUNT(*) > 3 WINDOW RANGE 256 SLIDE 256`,
		"scalar": `CREATE CONTINUOUS QUERY q WITH (polling = true, timestamp = et, lateness = 64) AS
			SELECT COUNT(*) AS c, SUM(x.v) AS sv, MAX(x.v) AS mx
			FROM [SELECT * FROM s] AS x WINDOW RANGE 256 SLIDE 128`,
		"filtered": `CREATE CONTINUOUS QUERY q WITH (polling = true, timestamp = et, lateness = 64) AS
			SELECT x.g, SUM(x.v) AS sv FROM [SELECT * FROM s WHERE v >= 0] AS x
			GROUP BY x.g WINDOW RANGE 256 SLIDE 128`,
	}
	for name, query := range queries {
		t.Run(name, func(t *testing.T) {
			rows := windowedRows(rand.New(rand.NewSource(7)), 800, 64)
			qp := runWindowedCompare(t, query, rows)
			if qp.Shards() != 4 || !qp.Partitioned() {
				t.Fatalf("shards = %d (windowed re-aggregation should shard)", qp.Shards())
			}
		})
	}
}

// TestPartitionedWindowedInOrder: the sharded path is also correct for
// perfectly in-order input (no disorder, zero lateness).
func TestPartitionedWindowedInOrder(t *testing.T) {
	const query = `CREATE CONTINUOUS QUERY q WITH (polling = true, timestamp = et) AS
		SELECT x.g, COUNT(*) AS c, SUM(x.v) AS sv
		FROM [SELECT * FROM s] AS x GROUP BY x.g WINDOW RANGE 200 SLIDE 100`
	rng := rand.New(rand.NewSource(3))
	var rows [][]vector.Value
	for i := 0; i < 600; i++ {
		rows = append(rows, []vector.Value{
			vector.NewInt(int64(rng.Intn(32))),
			vector.NewInt(int64(rng.Intn(4))),
			vector.NewInt(int64(rng.Intn(20))),
			vector.NewInt(int64(i)),
		})
	}
	for k := int64(0); k < 32; k++ {
		rows = append(rows, []vector.Value{vector.NewInt(k), vector.NewInt(0), vector.NewInt(0), vector.NewInt(10_000)})
	}
	qp := runWindowedCompare(t, query, rows)
	if qp.Shards() != 4 {
		t.Fatalf("shards = %d", qp.Shards())
	}
}

// TestPartitionedWindowedFallbacks: windowed shapes the analyzer cannot
// merge stay on one pipeline — count windows, non-aligned AVG / COUNT
// DISTINCT, row-preserving windows, and non-divisible slides — while
// aligned AVG shards fine.
func TestPartitionedWindowedFallbacks(t *testing.T) {
	ctx := context.Background()
	part, _ := newWindowedPair(t)
	fallbacks := map[string]string{
		"rows_window": `CREATE CONTINUOUS QUERY fq1 WITH (polling = true) AS
			SELECT SUM(x.v) AS sv FROM [SELECT * FROM s] AS x WINDOW ROWS 8 SLIDE 8`,
		"avg_reagg": `CREATE CONTINUOUS QUERY fq2 WITH (polling = true, timestamp = et) AS
			SELECT x.g, AVG(x.v) AS av FROM [SELECT * FROM s] AS x GROUP BY x.g WINDOW RANGE 100 SLIDE 100`,
		"count_distinct_reagg": `CREATE CONTINUOUS QUERY fq3 WITH (polling = true, timestamp = et) AS
			SELECT x.g, COUNT(DISTINCT x.v) AS dv FROM [SELECT * FROM s] AS x GROUP BY x.g WINDOW RANGE 100 SLIDE 100`,
		"row_preserving": `CREATE CONTINUOUS QUERY fq4 WITH (polling = true, timestamp = et) AS
			SELECT x.v FROM [SELECT * FROM s] AS x WINDOW RANGE 100 SLIDE 100`,
		"ragged_slide": `CREATE CONTINUOUS QUERY fq5 WITH (polling = true, timestamp = et) AS
			SELECT SUM(x.v) AS sv FROM [SELECT * FROM s] AS x WINDOW RANGE 100 SLIDE 30`,
	}
	for name, ddl := range fallbacks {
		if _, err := part.Exec(ctx, ddl); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	for _, qn := range []string{"fq1", "fq2", "fq3", "fq4", "fq5"} {
		q, err := part.Query(qn)
		if err != nil {
			t.Fatal(err)
		}
		if q.Shards() != 1 || q.Partitioned() {
			t.Errorf("%s: shards = %d, partitioned = %v, want single-pipeline fallback", qn, q.Shards(), q.Partitioned())
		}
	}
	// Aligned AVG is per-shard-final and must NOT fall back.
	if _, err := part.Exec(ctx, `CREATE CONTINUOUS QUERY okq WITH (polling = true, timestamp = et) AS
		SELECT x.k, AVG(x.v) AS av FROM [SELECT * FROM s] AS x GROUP BY x.k WINDOW RANGE 100 SLIDE 100`); err != nil {
		t.Fatal(err)
	}
	if q, _ := part.Query("okq"); q.Shards() != 4 {
		t.Errorf("aligned AVG: shards = %d, want 4", q.Shards())
	}
}

// TestWindowedLateSurfaced: late tuples are counted per query and appear
// in Query.Stats(), LateTuples(), and SHOW QUERIES alongside the
// watermark.
func TestWindowedLateSurfaced(t *testing.T) {
	ctx := context.Background()
	e := New(Config{Clock: metrics.NewManualClock(1_000_000)})
	if _, err := e.Exec(ctx, "CREATE BASKET s (v INT, et INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(ctx, `CREATE CONTINUOUS QUERY q WITH (polling = true, timestamp = et) AS
		SELECT SUM(x.v) AS sv FROM [SELECT * FROM s] AS x WINDOW RANGE 100 SLIDE 100`); err != nil {
		t.Fatal(err)
	}
	ingest := func(v, et int64) {
		if err := e.Ingest(ctx, "s", [][]vector.Value{{vector.NewInt(v), vector.NewInt(et)}}); err != nil {
			t.Fatal(err)
		}
		e.Drain()
	}
	ingest(1, 10)
	ingest(2, 150) // closes [0,100)
	ingest(9, 20)  // behind the emitted boundary: late
	ingest(9, 30)  // late again
	q, err := e.Query("q")
	if err != nil {
		t.Fatal(err)
	}
	if got := q.LateTuples(); got != 2 {
		t.Errorf("LateTuples = %d, want 2", got)
	}
	if got := q.Stats().Late; got != 2 {
		t.Errorf("Stats().Late = %d, want 2", got)
	}
	if wm, ok := q.Watermark(); !ok || wm != 150 {
		t.Errorf("watermark = %d, %v, want 150", wm, ok)
	}
	rel, err := e.Exec(ctx, "SHOW QUERIES")
	if err != nil {
		t.Fatal(err)
	}
	lateIdx, wmIdx := rel.Schema.Index("late_tuples"), rel.Schema.Index("watermark")
	if lateIdx < 0 || wmIdx < 0 {
		t.Fatalf("SHOW QUERIES missing late_tuples/watermark: %v", rel.Schema)
	}
	if got := rel.Cols[lateIdx].Get(0).I; got != 2 {
		t.Errorf("SHOW QUERIES late_tuples = %d, want 2", got)
	}
	if got := rel.Cols[wmIdx].Get(0); got.Null || got.I != 150 {
		t.Errorf("SHOW QUERIES watermark = %v, want 150", got)
	}
	// An unwindowed query reports NULL watermark and 0 late tuples.
	if _, err := e.Exec(ctx, `CREATE CONTINUOUS QUERY plain WITH (polling = true) AS
		SELECT * FROM [SELECT * FROM s] AS x`); err != nil {
		t.Fatal(err)
	}
	rel, _ = e.Exec(ctx, "SHOW QUERIES")
	for i := 0; i < rel.NumRows(); i++ {
		if rel.Cols[0].Get(i).S != "plain" {
			continue
		}
		if !rel.Cols[wmIdx].Get(i).Null || rel.Cols[lateIdx].Get(i).I != 0 {
			t.Errorf("unwindowed query: watermark/late = %v/%v",
				rel.Cols[wmIdx].Get(i), rel.Cols[lateIdx].Get(i))
		}
	}
}

// TestWindowedOptionErrors: invalid lateness/timestamp declarations are
// rejected with typed errors.
func TestWindowedOptionErrors(t *testing.T) {
	ctx := context.Background()
	e := New(Config{})
	if _, err := e.Exec(ctx, "CREATE BASKET s (v INT, et INT, name VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	for name, ddl := range map[string]string{
		"lateness_no_window": `CREATE CONTINUOUS QUERY q WITH (lateness = 10) AS
			SELECT * FROM [SELECT * FROM s] AS x`,
		"lateness_rows_window": `CREATE CONTINUOUS QUERY q WITH (lateness = 10) AS
			SELECT SUM(x.v) AS sv FROM [SELECT * FROM s] AS x WINDOW ROWS 4 SLIDE 4`,
		"lateness_negative": `CREATE CONTINUOUS QUERY q WITH (lateness = -5, timestamp = et) AS
			SELECT SUM(x.v) AS sv FROM [SELECT * FROM s] AS x WINDOW RANGE 100`,
		"lateness_garbage": `CREATE CONTINUOUS QUERY q WITH (lateness = 'soon') AS
			SELECT SUM(x.v) AS sv FROM [SELECT * FROM s] AS x WINDOW RANGE 100`,
		"timestamp_unknown": `CREATE CONTINUOUS QUERY q WITH (timestamp = nope) AS
			SELECT SUM(x.v) AS sv FROM [SELECT * FROM s] AS x WINDOW RANGE 100`,
		"timestamp_bad_type": `CREATE CONTINUOUS QUERY q WITH (timestamp = name) AS
			SELECT SUM(x.v) AS sv FROM [SELECT * FROM s] AS x WINDOW RANGE 100`,
	} {
		if _, err := e.Exec(ctx, ddl); !errors.Is(err, ErrInvalidOption) {
			t.Errorf("%s: err = %v, want ErrInvalidOption", name, err)
		}
	}
	// Duration strings are accepted.
	if _, err := e.Exec(ctx, `CREATE CONTINUOUS QUERY ok WITH (lateness = '250ms', timestamp = et) AS
		SELECT SUM(x.v) AS sv FROM [SELECT * FROM s] AS x WINDOW RANGE 1000000000`); err != nil {
		t.Errorf("duration lateness rejected: %v", err)
	}
}

// TestPartitionedWindowedConcurrentIngest is the -race stress for the
// windowed sharded path: concurrent producers feed event-time tuples
// while the worker pool fires shard window runners, the ticker flushes
// frontiers, and the windowed merge recombines — the engine must consume
// everything and stop cleanly.
func TestPartitionedWindowedConcurrentIngest(t *testing.T) {
	ctx := context.Background()
	e := New(Config{Workers: 4})
	if _, err := e.Exec(ctx, "CREATE BASKET s (k INT, g INT, v INT, et INT) WITH (partitions = 4, partition_by = k)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(ctx, `CREATE CONTINUOUS QUERY q WITH (depth = 256, timestamp = et, lateness = 5000) AS
		SELECT x.g, COUNT(*) AS c, SUM(x.v) AS sv
		FROM [SELECT * FROM s] AS x GROUP BY x.g WINDOW RANGE 1024 SLIDE 1024`); err != nil {
		t.Fatal(err)
	}
	q, err := e.Query("q")
	if err != nil {
		t.Fatal(err)
	}
	if q.Shards() != 4 {
		t.Fatalf("shards = %d", q.Shards())
	}
	if err := e.Start(ctx); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range q.Subscription().C() {
		}
	}()

	const producers, perProducer = 4, 400
	var et int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				ts := atomic.AddInt64(&et, 3)
				row := [][]vector.Value{{
					vector.NewInt(int64(p*31 + i)), vector.NewInt(int64(i % 4)),
					vector.NewInt(int64(i)), vector.NewInt(ts),
				}}
				if err := e.Ingest(ctx, "s", row); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	const want = producers * perProducer
	deadline := time.After(20 * time.Second)
	for q.Stats().TuplesIn < want {
		select {
		case <-deadline:
			t.Fatalf("timed out with %d of %d tuples consumed", q.Stats().TuplesIn, want)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if err := e.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	<-done
}

// TestPartitionedWindowedTeardown: DROP CONTINUOUS QUERY removes the
// shard factories, the windowed merge, and the shard output baskets.
func TestPartitionedWindowedTeardown(t *testing.T) {
	ctx := context.Background()
	part, _ := newWindowedPair(t)
	baseline := len(part.Scheduler().Transitions())
	if _, err := part.Exec(ctx, `CREATE CONTINUOUS QUERY q WITH (timestamp = et) AS
		SELECT x.g, SUM(x.v) AS sv FROM [SELECT * FROM s] AS x GROUP BY x.g WINDOW RANGE 100 SLIDE 100`); err != nil {
		t.Fatal(err)
	}
	// 4 shard factories + windowed merge + emitter.
	if got := len(part.Scheduler().Transitions()); got != baseline+6 {
		t.Fatalf("transitions = %d, want %d", got, baseline+6)
	}
	if _, err := part.Exec(ctx, "DROP CONTINUOUS QUERY q"); err != nil {
		t.Fatal(err)
	}
	if got := len(part.Scheduler().Transitions()); got != baseline {
		t.Errorf("transitions leaked after drop: %d, want %d", got, baseline)
	}
	if _, err := part.Exec(ctx, "SELECT * FROM q_out"); err == nil {
		t.Error("q_out still queryable after drop")
	}
	part.mu.Lock()
	s := part.streams["s"]
	part.mu.Unlock()
	if s.shardReaders != 0 {
		t.Errorf("shardReaders = %d after drop", s.shardReaders)
	}
}
