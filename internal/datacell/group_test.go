package datacell

import (
	"testing"
)

func TestQueryNetworkChaining(t *testing.T) {
	e, _ := newEngine(t)
	// q1 filters the stream; q2 consumes q1's output basket.
	_, err := e.RegisterContinuous("stage1",
		"SELECT S.a AS a, S.b AS b FROM [SELECT * FROM R] AS S WHERE S.a > 10",
		WithSQLPolling())
	if err != nil {
		t.Fatal(err)
	}
	q2, err := e.RegisterContinuous("stage2",
		"SELECT * FROM [SELECT * FROM stage1_out] AS x WHERE x.b < 100")
	if err != nil {
		t.Fatal(err)
	}
	ingestPairs(t, e, "R", [][2]int64{
		{5, 50},   // dropped by stage1
		{20, 50},  // survives both
		{30, 500}, // dropped by stage2
	})
	e.Drain()
	rels := collect(q2)
	if countRows(rels) != 1 {
		t.Fatalf("chained rows = %d, want 1", countRows(rels))
	}
	if rels[0].Cols[0].Get(0).I != 20 {
		t.Errorf("row = %v", rels[0].Row(0))
	}
	// Second batch flows through the chain incrementally.
	ingestPairs(t, e, "R", [][2]int64{{40, 60}})
	e.Drain()
	if got := countRows(collect(q2)); got != 1 {
		t.Errorf("second batch rows = %d", got)
	}
}

func TestChainedUnknownUpstreamFails(t *testing.T) {
	e, _ := newEngine(t)
	if _, err := e.RegisterContinuous("bad",
		"SELECT * FROM [SELECT * FROM nosuch_out] AS x"); err == nil {
		t.Error("unknown upstream should fail")
	}
}

func TestFilterGroupSharedFactory(t *testing.T) {
	e, _ := newEngine(t)
	g, err := e.RegisterFilterGroup("grp", "R", "x.a >= 10 AND x.a < 40", []GroupMember{
		{Name: "m0", Residual: "x.a < 20"},
		{Name: "m1", Residual: "x.a >= 20 AND x.a < 30"},
		{Name: "m2", Residual: "x.a >= 30"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var rows [][2]int64
	for i := int64(0); i < 50; i++ {
		rows = append(rows, [2]int64{i, i})
	}
	ingestPairs(t, e, "R", rows)
	e.Drain()

	// Common admits a in [10,40): 30 tuples, evaluated once.
	if got := g.Common.Stats().TuplesIn; got != 50 {
		t.Errorf("common examined %d, want 50", got)
	}
	if got := g.Common.Stats().TuplesOut; got != 30 {
		t.Errorf("common admitted %d, want 30", got)
	}
	wants := []int{10, 10, 10}
	for i, m := range g.Members {
		if got := countRows(collect(m)); got != wants[i] {
			t.Errorf("member %d rows = %d, want %d", i, got, wants[i])
		}
		// Members only examined the 30 admitted tuples, not all 50.
		if got := m.Stats().TuplesIn; got != 30 {
			t.Errorf("member %d examined %d, want 30", i, got)
		}
	}
}

func TestFilterGroupValidation(t *testing.T) {
	e, _ := newEngine(t)
	if _, err := e.RegisterFilterGroup("g", "R", "x.a > 0", nil); err == nil {
		t.Error("empty member list should fail")
	}
	if _, err := e.RegisterFilterGroup("g", "R", "", []GroupMember{{Name: "m"}}); err == nil {
		t.Error("empty common predicate should fail")
	}
	// Bad residual rolls the group back.
	if _, err := e.RegisterFilterGroup("g2", "R", "x.a > 0", []GroupMember{
		{Name: "ok1", Residual: "x.a < 5"},
		{Name: "bad", Residual: "x.nosuch > 0"},
	}); err == nil {
		t.Error("bad residual should fail")
	}
	// The rollback freed the names.
	if _, err := e.RegisterContinuous("ok1",
		"SELECT * FROM [SELECT * FROM R] AS S"); err != nil {
		t.Errorf("rollback incomplete: %v", err)
	}
}

func TestChainedWindowedQuery(t *testing.T) {
	e, _ := newEngine(t)
	_, err := e.RegisterContinuous("filt",
		"SELECT S.a AS a FROM [SELECT * FROM R] AS S WHERE S.a >= 0", WithSQLPolling())
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.RegisterContinuous("agg",
		"SELECT SUM(x.a) AS total FROM [SELECT * FROM filt_out] AS x WINDOW ROWS 3 SLIDE 3")
	if err != nil {
		t.Fatal(err)
	}
	ingestPairs(t, e, "R", [][2]int64{{1, 0}, {2, 0}, {3, 0}, {4, 0}})
	e.Drain()
	rels := collect(q)
	if len(rels) != 1 || rels[0].Cols[0].Get(0).I != 6 {
		t.Fatalf("windowed chain: %v", rels)
	}
}
