package datacell

// Engine-level coverage of the execution core: dropping a query while
// producers hammer its stream must fence cleanly (no fire after
// teardown, no race), and SHOW SCHEDULER must expose the targeted
// wake-up counters.

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vector"
)

// TestDropQueryUnderConcurrentIngest is the Remove-fence regression:
// several producers ingest a partitioned stream while one of two
// continuous queries is dropped mid-flight. The drop must not race with
// in-flight firings (the scheduler fences Remove until the transition's
// current firing finishes) and the surviving query must keep producing.
func TestDropQueryUnderConcurrentIngest(t *testing.T) {
	ctx := context.Background()
	e := New(Config{Workers: 4})
	if _, err := e.Exec(ctx, "CREATE BASKET s (k INT, v INT) WITH (partitions = 4, partition_by = k)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(ctx, `CREATE CONTINUOUS QUERY doomed WITH (depth = 4096) AS
		SELECT * FROM [SELECT * FROM s] AS x WHERE x.v >= 0`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(ctx, `CREATE CONTINUOUS QUERY survivor WITH (depth = 4096) AS
		SELECT * FROM [SELECT * FROM s] AS x WHERE x.v >= 0`); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(ctx); err != nil {
		t.Fatal(err)
	}

	const producers, batches, batchSize = 4, 40, 10
	var stop atomic.Bool
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				rows := make([][]vector.Value, batchSize)
				for i := range rows {
					rows[i] = []vector.Value{
						vector.NewInt(int64(p*131 + b*17 + i)),
						vector.NewInt(int64(b*batchSize + i)),
					}
				}
				if err := e.Ingest(ctx, "s", rows); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	// Drop the first query roughly mid-stream, from its own goroutine so
	// the teardown overlaps live ingest and firing.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(2 * time.Millisecond)
		if _, err := e.Exec(ctx, "DROP CONTINUOUS QUERY doomed"); err != nil {
			t.Error(err)
		}
		stop.Store(true)
	}()
	wg.Wait()
	if !stop.Load() {
		t.Fatal("drop goroutine did not run")
	}
	if _, err := e.Query("doomed"); err == nil {
		t.Fatal("doomed still registered after drop")
	}

	// The survivor must still deliver fresh tuples end to end.
	q, err := e.Query("survivor")
	if err != nil {
		t.Fatal(err)
	}
	before := q.Stats().TuplesOut
	if err := e.Ingest(ctx, "s", [][]vector.Value{{vector.NewInt(1), vector.NewInt(7)}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for q.Stats().TuplesOut <= before {
		if time.Now().After(deadline) {
			t.Fatalf("survivor stalled at %d tuples out", q.Stats().TuplesOut)
		}
		time.Sleep(time.Millisecond)
	}
	if err := e.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if err := e.Scheduler().Err(); err != nil {
		t.Fatalf("scheduler error after drop under ingest: %v", err)
	}
}

// TestShowScheduler drives a query, then checks SHOW SCHEDULER exposes
// per-transition fired counters and per-worker clocks.
func TestShowScheduler(t *testing.T) {
	ctx := context.Background()
	e := New(Config{Workers: 2})
	if _, err := e.Exec(ctx, "CREATE BASKET s (v INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(ctx, `CREATE CONTINUOUS QUERY q WITH (polling = true) AS
		SELECT * FROM [SELECT * FROM s] AS x WHERE x.v > 0`); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(ctx, "s", [][]vector.Value{{vector.NewInt(1)}, {vector.NewInt(2)}}); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	rel, err := e.Exec(ctx, "SHOW SCHEDULER")
	if err != nil {
		t.Fatal(err)
	}
	wantCols := []string{"kind", "name", "priority", "fired", "claim_misses", "coalesced_wakes", "busy_ns", "idle_ns"}
	for i, w := range wantCols {
		if rel.Schema.Columns[i].Name != w {
			t.Fatalf("SHOW SCHEDULER column %d = %s, want %s", i, rel.Schema.Columns[i].Name, w)
		}
	}
	fired := map[string]int64{}
	for i := 0; i < rel.NumRows(); i++ {
		row := rel.Row(i)
		if row[0].S == "transition" {
			fired[row[1].S] = row[3].I
		}
	}
	if n, ok := fired["q"]; !ok || n < 1 {
		t.Fatalf("transition q fired = %d, %v (rows: %v)", n, ok, fired)
	}
}
