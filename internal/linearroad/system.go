package linearroad

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/basket"
	"repro/internal/catalog"
	"repro/internal/datacell"
	"repro/internal/metrics"
	"repro/internal/vector"
	"repro/internal/window"
)

// System is the Linear Road application built on the DataCell engine:
//
//   - position reports stream into the `pos` basket;
//   - per-minute segment statistics run as a windowed continuous SQL query
//     (incremental evaluation), exactly the engine's normal path;
//   - a toll/accident processor — a custom Petri-net transition, the
//     paper's "factory wrapping part of a query plan" — consumes the
//     statistics basket and a private replica of the stream, maintains
//     vehicle state, and issues notifications.
type System struct {
	eng   *datacell.Engine
	clock *metrics.ManualClock
	proc  *tollProcessor

	// Latency tracks wall-clock time from batch ingest to quiescence —
	// an upper bound on per-report response time in step-driven mode.
	Latency *metrics.Histogram
}

// statsQuery computes the benchmark's per-minute segment statistics. The
// WINDOW RANGE spans one simulated minute in nanoseconds; the engine clock
// runs on simulated time.
const statsQuery = `
SELECT p.xway AS xway, p.dir AS dir, p.seg AS seg,
       COUNT(DISTINCT p.vid) AS cnt, AVG(p.speed) AS avgspd, MIN(p.time) AS mintime
FROM [SELECT * FROM pos] AS p
GROUP BY p.xway, p.dir, p.seg
WINDOW RANGE 60000000000 SLIDE 60000000000`

// NewSystem assembles the Linear Road pipeline.
func NewSystem() (*System, error) {
	clock := metrics.NewManualClock(0)
	eng := datacell.New(datacell.Config{Clock: clock})
	schema := catalog.NewSchema(
		catalog.Column{Name: "time", Type: vector.Int64},
		catalog.Column{Name: "vid", Type: vector.Int64},
		catalog.Column{Name: "speed", Type: vector.Int64},
		catalog.Column{Name: "xway", Type: vector.Int64},
		catalog.Column{Name: "lane", Type: vector.Int64},
		catalog.Column{Name: "dir", Type: vector.Int64},
		catalog.Column{Name: "seg", Type: vector.Int64},
		catalog.Column{Name: "pos", Type: vector.Int64},
	)
	if err := eng.CreateStream("pos", schema); err != nil {
		return nil, err
	}
	// Segment statistics: registered first so the scheduler fires it
	// before the toll processor within a pass.
	_, err := eng.RegisterContinuous("segstats", statsQuery,
		datacell.WithStrategy(datacell.SeparateBaskets),
		datacell.WithWindowMode(window.Incremental),
		datacell.WithSQLPolling())
	if err != nil {
		return nil, fmt.Errorf("linearroad: %w", err)
	}

	// The toll processor's private stream replica. Ingest only fans out to
	// engine-managed replicas, so Feed routes into it explicitly.
	posIn := basket.New("lr_tollproc_in", schema, clock)
	posIn.OnAppend(eng.Scheduler().Notify)
	statsEntry, err := eng.Catalog().Lookup("segstats_out")
	if err != nil {
		return nil, err
	}
	statsBasket, ok := statsEntry.Source.(*basket.Basket)
	if !ok {
		return nil, fmt.Errorf("linearroad: segstats_out is not a basket")
	}
	proc := &tollProcessor{
		posIn:   posIn,
		statsIn: statsBasket,
		logic:   newTollLogic(),
		stats:   map[segKey]map[int64]sqlStat{},
	}
	eng.Scheduler().Add(proc)
	return &System{eng: eng, clock: clock, proc: proc, Latency: metrics.NewHistogram()}, nil
}

// Feed ingests the reports of one simulated second (all records must
// share the same Time) and processes them to quiescence, returning after
// all due notifications have been issued.
func (s *System) Feed(t int64, batch []Record) error {
	start := time.Now()
	s.clock.Set(t * int64(time.Second))
	// Close any simulated-time windows that ended before t.
	if err := s.eng.FlushWindows(); err != nil {
		return err
	}
	if len(batch) > 0 {
		rows := make([][]vector.Value, len(batch))
		for i, r := range batch {
			if r.Time != t {
				return fmt.Errorf("linearroad: record at %d fed during second %d", r.Time, t)
			}
			rows[i] = []vector.Value{
				vector.NewInt(r.Time), vector.NewInt(r.VID), vector.NewInt(r.Speed),
				vector.NewInt(r.XWay), vector.NewInt(r.Lane), vector.NewInt(r.Dir),
				vector.NewInt(r.Seg), vector.NewInt(r.Pos),
			}
		}
		if err := s.eng.Ingest(context.Background(), "pos", rows); err != nil {
			return err
		}
		if err := s.proc.posIn.AppendRows(rows); err != nil {
			return err
		}
	}
	s.eng.Drain()
	if err := s.eng.Scheduler().Err(); err != nil {
		return err
	}
	if len(batch) > 0 {
		s.Latency.Observe(time.Since(start).Nanoseconds())
	}
	return nil
}

// Run plays a whole generated stream through the system.
func (s *System) Run(records []Record) error {
	if len(records) == 0 {
		return nil
	}
	last := records[len(records)-1].Time
	i := 0
	for t := int64(0); t <= last; t++ {
		j := i
		for j < len(records) && records[j].Time == t {
			j++
		}
		if err := s.Feed(t, records[i:j]); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// Notifications returns everything issued so far, in stream order.
func (s *System) Notifications() []Notification {
	return s.proc.notificationsCopy()
}

// Engine exposes the underlying engine (statistics, inspection).
func (s *System) Engine() *datacell.Engine { return s.eng }

// sqlStat is one minute's statistics row as computed by the SQL query.
type sqlStat struct {
	cnt int64
	avg float64
}

// tollProcessor is the custom transition: it absorbs statistics rows and
// position reports, maintains vehicle/accident state, and charges tolls.
type tollProcessor struct {
	posIn   *basket.Basket
	statsIn *basket.Basket

	logic *tollLogic
	stats map[segKey]map[int64]sqlStat

	mu            sync.Mutex
	notifications []Notification
}

// Name implements scheduler.Transition.
func (p *tollProcessor) Name() string { return "lr_tollproc" }

// Ready implements scheduler.Transition.
func (p *tollProcessor) Ready() bool {
	return p.statsIn.Len() > 0 || p.posIn.Len() > 0
}

// Fire implements scheduler.Transition.
func (p *tollProcessor) Fire() error {
	// 1. Absorb new statistics rows (xway, dir, seg, cnt, avgspd, mintime, ts).
	p.statsIn.Lock()
	view, n := p.statsIn.LockedSnapshot()
	p.statsIn.LockedDropPrefix(n)
	p.statsIn.Unlock()
	for _, ch := range view.Chunks {
		cols := ch.Cols
		for i := 0; i < ch.Len(); i++ {
			sk := segKey{cols[0].Get(i).I, cols[1].Get(i).I, cols[2].Get(i).I}
			perMin := p.stats[sk]
			if perMin == nil {
				perMin = map[int64]sqlStat{}
				p.stats[sk] = perMin
			}
			minute := cols[5].Get(i).I / 60
			perMin[minute] = sqlStat{cnt: cols[3].Get(i).I, avg: cols[4].Get(i).F}
		}
	}

	// 2. Process position reports in arrival order.
	p.posIn.Lock()
	view, n = p.posIn.LockedSnapshot()
	p.posIn.LockedDropPrefix(n)
	p.posIn.Unlock()
	for _, ch := range view.Chunks {
		cols := ch.Cols
		for i := 0; i < ch.Len(); i++ {
			r := Record{
				Time: cols[0].Get(i).I, VID: cols[1].Get(i).I, Speed: cols[2].Get(i).I,
				XWay: cols[3].Get(i).I, Lane: cols[4].Get(i).I, Dir: cols[5].Get(i).I,
				Seg: cols[6].Get(i).I, Pos: cols[7].Get(i).I,
			}
			if p.logic.observe(r) {
				note := p.logic.charge(r, p.lookup)
				p.mu.Lock()
				p.notifications = append(p.notifications, note)
				p.mu.Unlock()
			}
		}
	}
	return nil
}

// lookup implements statsLookup over the SQL-computed statistics.
func (p *tollProcessor) lookup(xway, dir, seg, minute int64) (int64, float64, bool) {
	perMin := p.stats[segKey{xway, dir, seg}]
	if perMin == nil {
		return 0, 0, false
	}
	var cnt int64
	if prev, ok := perMin[minute-1]; ok {
		cnt = prev.cnt
	}
	var sum float64
	var have int
	for d := int64(1); d <= 5; d++ {
		if s, ok := perMin[minute-d]; ok && s.cnt > 0 {
			sum += s.avg
			have++
		}
	}
	if have == 0 {
		return cnt, 0, false
	}
	return cnt, sum / float64(have), true
}

func (p *tollProcessor) notificationsCopy() []Notification {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Notification(nil), p.notifications...)
}
