package linearroad

// Reference is the oracle implementation of the (scaled) Linear Road
// semantics, computed with plain maps in a single pass. The DataCell
// system must produce identical tolls and alerts; the experiment harness
// compares the two.
//
// Semantics of this reproduction (see DESIGN.md for the deviations from
// the full benchmark):
//
//   - Minute m covers simulated seconds [60m, 60m+60).
//   - Segment statistics per (xway, dir, seg, minute): distinct-vehicle
//     count (the benchmark's volume measure) and mean report speed.
//   - LAV(xway,dir,seg,m): mean of the per-minute mean speeds over the up
//     to five minutes m-5..m-1 that have data.
//   - A vehicle is stopped once it reports the same position four
//     consecutive times; two stopped vehicles at one (xway,lane,dir,pos)
//     make an accident, active until either reports a new position.
//   - On every segment crossing (including a vehicle's first report) the
//     vehicle receives a notification: an accident alert if an active
//     accident lies within five segments downstream, otherwise a toll
//     2*(cnt-50)^2 when LAV < 40 mph and the previous minute had more
//     than 50 distinct vehicles in the segment; otherwise toll 0.

// Notification is the per-crossing answer the system owes each vehicle.
type Notification struct {
	VID  int64
	Time int64
	Toll int64
	// Accident reports an accident alert (toll exempt).
	Accident bool
}

// StoppedQuorum is how many identical consecutive position reports mark a
// vehicle as stopped.
const StoppedQuorum = 4

// TollThreshold is the distinct-vehicle threshold for charging (the
// benchmark's 50 vehicles).
const TollThreshold = 50

// LAVThreshold is the speed below which a segment is congested (mph).
const LAVThreshold = 40

// AccidentRange is how many segments upstream of an accident receive
// alerts.
const AccidentRange = 4

type segKey struct{ xway, dir, seg int64 }

type minuteStat struct {
	vids     map[int64]struct{}
	reports  int64
	sumSpeed int64
}

type locKey struct{ xway, lane, dir, pos int64 }

// accidentState tracks the stopped vehicles at one location.
type accidentState map[int64]bool

// tollLogic is the shared crossing/accident bookkeeping used by both the
// oracle (with its own stats) and the DataCell system (with SQL-computed
// stats). Stats lookup is injected so the two implementations remain
// independent where it matters.
type tollLogic struct {
	lastPos   map[int64][2]int64 // vid → (pos, consecutive count)
	stoppedAt map[int64]locKey   // vid → stop location
	accidents map[locKey]accidentState
	lastSeg   map[int64]segKey // vid → last reported segment
}

func newTollLogic() *tollLogic {
	return &tollLogic{
		lastPos:   map[int64][2]int64{},
		stoppedAt: map[int64]locKey{},
		accidents: map[locKey]accidentState{},
		lastSeg:   map[int64]segKey{},
	}
}

// observe updates stop/accident state with one report and reports whether
// the report is a segment crossing.
func (l *tollLogic) observe(r Record) (crossing bool) {
	// Stop detection.
	lp := l.lastPos[r.VID]
	if lp[0] == r.Pos && lp[1] > 0 {
		lp[1]++
	} else {
		lp = [2]int64{r.Pos, 1}
	}
	l.lastPos[r.VID] = lp
	loc := locKey{r.XWay, r.Lane, r.Dir, r.Pos}
	if lp[1] >= StoppedQuorum {
		if prev, ok := l.stoppedAt[r.VID]; !ok || prev != loc {
			if ok {
				l.unstop(r.VID, prev)
			}
			l.stoppedAt[r.VID] = loc
			acc := l.accidents[loc]
			if acc == nil {
				acc = accidentState{}
				l.accidents[loc] = acc
			}
			acc[r.VID] = true
		}
	} else if prev, ok := l.stoppedAt[r.VID]; ok && (prev.pos != r.Pos || prev.lane != r.Lane) {
		l.unstop(r.VID, prev)
	}

	// Segment crossing.
	sk := segKey{r.XWay, r.Dir, r.Seg}
	last, seen := l.lastSeg[r.VID]
	l.lastSeg[r.VID] = sk
	return !seen || last != sk
}

func (l *tollLogic) unstop(vid int64, loc locKey) {
	delete(l.stoppedAt, vid)
	if acc := l.accidents[loc]; acc != nil {
		delete(acc, vid)
		if len(acc) == 0 {
			delete(l.accidents, loc)
		}
	}
}

// accidentAhead reports whether an active accident affects the vehicle's
// current segment: within AccidentRange segments downstream in its travel
// direction.
func (l *tollLogic) accidentAhead(r Record) bool {
	for loc, acc := range l.accidents {
		if len(acc) < 2 || loc.xway != r.XWay || loc.dir != r.Dir {
			continue
		}
		accSeg := loc.pos / FeetPerSegment
		if accSeg >= SegmentsPerXWay {
			accSeg = SegmentsPerXWay - 1
		}
		if r.Dir == 0 {
			if r.Seg <= accSeg && accSeg-r.Seg <= AccidentRange {
				return true
			}
		} else {
			if r.Seg >= accSeg && r.Seg-accSeg <= AccidentRange {
				return true
			}
		}
	}
	return false
}

// statsLookup returns the previous-minute report count and the LAV for a
// segment; ok=false when no history exists.
type statsLookup func(xway, dir, seg, minute int64) (cnt int64, lav float64, ok bool)

// charge computes the notification for one crossing report.
func (l *tollLogic) charge(r Record, stats statsLookup) Notification {
	n := Notification{VID: r.VID, Time: r.Time}
	if l.accidentAhead(r) {
		n.Accident = true
		return n
	}
	m := r.Time / 60
	if m == 0 {
		return n
	}
	cnt, lav, ok := stats(r.XWay, r.Dir, r.Seg, m)
	if !ok {
		return n
	}
	if lav < LAVThreshold && cnt > TollThreshold {
		over := cnt - TollThreshold
		n.Toll = 2 * over * over
	}
	return n
}

// Reference runs the oracle over the full stream and returns every
// notification in stream order.
func Reference(records []Record) []Notification {
	logic := newTollLogic()
	stats := map[segKey]map[int64]*minuteStat{} // seg → minute → stat

	lookup := func(xway, dir, seg, minute int64) (int64, float64, bool) {
		perMin := stats[segKey{xway, dir, seg}]
		if perMin == nil {
			return 0, 0, false
		}
		prev, okPrev := perMin[minute-1]
		var cnt int64
		if okPrev {
			cnt = int64(len(prev.vids))
		}
		// LAV over up to five preceding minutes that have data.
		var sum float64
		var have int
		for d := int64(1); d <= 5; d++ {
			if s, ok := perMin[minute-d]; ok && s.reports > 0 {
				sum += float64(s.sumSpeed) / float64(s.reports)
				have++
			}
		}
		if have == 0 {
			return cnt, 0, false
		}
		return cnt, sum / float64(have), true
	}

	var out []Notification
	for _, r := range records {
		crossing := logic.observe(r)
		if crossing {
			out = append(out, logic.charge(r, lookup))
		}
		// Update stats AFTER charging: the benchmark charges from history,
		// and the current minute is still open.
		sk := segKey{r.XWay, r.Dir, r.Seg}
		perMin := stats[sk]
		if perMin == nil {
			perMin = map[int64]*minuteStat{}
			stats[sk] = perMin
		}
		m := r.Time / 60
		st := perMin[m]
		if st == nil {
			st = &minuteStat{vids: map[int64]struct{}{}}
			perMin[m] = st
		}
		st.vids[r.VID] = struct{}{}
		st.reports++
		st.sumSpeed += r.Speed
	}
	return out
}
