// Package linearroad implements a scaled Linear Road benchmark (Arasu et
// al., VLDB 2004), the workload the paper reports running "out of the box"
// (§5). Since the original driving-simulation dataset is not available,
// a deterministic synthetic traffic simulator produces the same record
// structure: vehicles on L expressways emit position reports every 30
// simulated seconds; stopped-vehicle pairs cause accidents; the system
// computes per-minute segment statistics, detects accidents, and issues
// toll notifications under a response-time bound.
//
// Deviations from the full benchmark are documented in DESIGN.md: the
// historical account-balance/expenditure queries are omitted and travel is
// simplified (wrap-around instead of exits). Segment volume uses the
// benchmark's real measure — distinct vehicles per minute, computed by a
// COUNT(DISTINCT) windowed continuous query. The reference implementation
// in this package uses the same definitions, so correctness checks are
// exact.
package linearroad

import (
	"math/rand"
)

// Record is one Linear Road input event (position reports only; Type is
// kept for structural fidelity with the benchmark's input schema).
type Record struct {
	Type  int64 // 0 = position report
	Time  int64 // simulated seconds since start
	VID   int64
	Speed int64 // mph
	XWay  int64
	Lane  int64 // 0..4
	Dir   int64 // 0 east, 1 west
	Seg   int64 // 0..99
	Pos   int64 // feet from the western end (0 .. 100*5280)
}

// Benchmark geometry.
const (
	SegmentsPerXWay = 100
	FeetPerSegment  = 5280
	ReportPeriodSec = 30
)

// GenConfig parameterizes the traffic simulator.
type GenConfig struct {
	XWays           int
	VehiclesPerXWay int
	DurationSec     int
	Seed            int64
	// AccidentEverySec injects one stopped-vehicle-pair accident per
	// expressway every so many simulated seconds (0 disables accidents).
	AccidentEverySec int
	// AccidentDurationSec controls how long stopped vehicles block the
	// road before driving on (default 120).
	AccidentDurationSec int
}

func (c *GenConfig) defaults() {
	if c.XWays <= 0 {
		c.XWays = 1
	}
	if c.VehiclesPerXWay <= 0 {
		c.VehiclesPerXWay = 100
	}
	if c.DurationSec <= 0 {
		c.DurationSec = 300
	}
	if c.AccidentDurationSec <= 0 {
		c.AccidentDurationSec = 120
	}
}

type vehicle struct {
	vid      int64
	xway     int64
	dir      int64
	pos      int64 // feet
	speed    int64 // mph
	entry    int64 // entry time (sec)
	stopUnti int64 // stopped-in-accident until this time (0 = moving)
	lane     int64
	done     bool
}

// Generate produces the position-report stream, ordered by time. The
// output is deterministic for a given config.
func Generate(cfg GenConfig) []Record {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var vehicles []*vehicle
	vid := int64(0)
	for x := 0; x < cfg.XWays; x++ {
		for i := 0; i < cfg.VehiclesPerXWay; i++ {
			dir := int64(rng.Intn(2))
			v := &vehicle{
				vid:   vid,
				xway:  int64(x),
				dir:   dir,
				pos:   int64(rng.Intn(SegmentsPerXWay * FeetPerSegment)),
				speed: 45 + int64(rng.Intn(30)),
				entry: int64(rng.Intn(ReportPeriodSec)), // staggered entries
				lane:  1 + int64(rng.Intn(3)),
			}
			vehicles = append(vehicles, v)
			vid++
		}
	}

	// Accident schedule: pick two vehicles per expressway at the scheduled
	// times and pin them to one position.
	type accident struct {
		time int64
		xway int64
	}
	var schedule []accident
	if cfg.AccidentEverySec > 0 {
		for t := int64(cfg.AccidentEverySec); t < int64(cfg.DurationSec); t += int64(cfg.AccidentEverySec) {
			for x := 0; x < cfg.XWays; x++ {
				schedule = append(schedule, accident{time: t, xway: int64(x)})
			}
		}
	}

	var out []Record
	feetPerTick := func(speedMph int64) int64 {
		// One report period of travel: mph * 5280 / 3600 * 30 sec.
		return speedMph * FeetPerSegment * ReportPeriodSec / 3600
	}
	for t := int64(0); t < int64(cfg.DurationSec); t++ {
		// Trigger scheduled accidents.
		for _, a := range schedule {
			if a.time != t {
				continue
			}
			// Find two moving vehicles on the expressway; stop them at the
			// first one's position.
			var pair []*vehicle
			for _, v := range vehicles {
				if v.xway == a.xway && !v.done && v.stopUnti == 0 {
					pair = append(pair, v)
					if len(pair) == 2 {
						break
					}
				}
			}
			if len(pair) == 2 {
				until := t + int64(cfg.AccidentDurationSec)
				pair[1].pos = pair[0].pos
				pair[1].dir = pair[0].dir
				pair[1].lane = pair[0].lane
				pair[0].stopUnti = until
				pair[1].stopUnti = until
			}
		}
		for _, v := range vehicles {
			if v.done || (t-v.entry)%ReportPeriodSec != 0 || t < v.entry {
				continue
			}
			speed := v.speed
			if v.stopUnti > t {
				speed = 0
			} else {
				if v.stopUnti != 0 && v.stopUnti <= t {
					v.stopUnti = 0
				}
				// Mild speed wander.
				speed += int64(rng.Intn(11)) - 5
				if speed < 10 {
					speed = 10
				}
				v.speed = speed
			}
			seg := v.pos / FeetPerSegment
			if seg >= SegmentsPerXWay {
				seg = SegmentsPerXWay - 1
			}
			out = append(out, Record{
				Type: 0, Time: t, VID: v.vid, Speed: speed,
				XWay: v.xway, Lane: v.lane, Dir: v.dir, Seg: seg, Pos: v.pos,
			})
			// Advance (direction 0 = increasing position).
			if speed > 0 {
				delta := feetPerTick(speed)
				if v.dir == 0 {
					v.pos += delta
				} else {
					v.pos -= delta
				}
				if v.pos < 0 || v.pos >= SegmentsPerXWay*FeetPerSegment {
					// Wrap around: the vehicle re-enters (keeps the stream
					// rate steady for the experiment's duration).
					v.pos = (v.pos + SegmentsPerXWay*FeetPerSegment) % (SegmentsPerXWay * FeetPerSegment)
				}
			}
		}
	}
	return out
}
