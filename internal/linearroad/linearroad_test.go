package linearroad

import (
	"testing"
)

func smallConfig() GenConfig {
	return GenConfig{
		XWays:            1,
		VehiclesPerXWay:  60,
		DurationSec:      240,
		Seed:             42,
		AccidentEverySec: 90,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig())
	b := Generate(smallConfig())
	if len(a) == 0 {
		t.Fatal("no records")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	recs := Generate(smallConfig())
	lastTime := int64(0)
	reportsPerVID := map[int64]int{}
	for _, r := range recs {
		if r.Time < lastTime {
			t.Fatal("records out of time order")
		}
		lastTime = r.Time
		if r.Seg < 0 || r.Seg >= SegmentsPerXWay {
			t.Fatalf("segment out of range: %+v", r)
		}
		if r.Pos < 0 || r.Pos >= SegmentsPerXWay*FeetPerSegment {
			t.Fatalf("position out of range: %+v", r)
		}
		if r.Seg != r.Pos/FeetPerSegment {
			t.Fatalf("segment/position inconsistent: %+v", r)
		}
		if r.Dir != 0 && r.Dir != 1 {
			t.Fatalf("bad direction: %+v", r)
		}
		reportsPerVID[r.VID]++
	}
	if len(reportsPerVID) != 60 {
		t.Errorf("vehicles = %d, want 60", len(reportsPerVID))
	}
	// Every vehicle reports roughly every 30 s over 240 s.
	for vid, n := range reportsPerVID {
		if n < 6 || n > 9 {
			t.Errorf("vehicle %d has %d reports", vid, n)
		}
	}
}

func TestGenerateAccidentsProduceStoppedVehicles(t *testing.T) {
	recs := Generate(smallConfig())
	stopped := 0
	for _, r := range recs {
		if r.Speed == 0 {
			stopped++
		}
	}
	if stopped == 0 {
		t.Error("accident injection produced no stopped reports")
	}
}

func TestReferenceBasics(t *testing.T) {
	recs := Generate(smallConfig())
	notes := Reference(recs)
	if len(notes) == 0 {
		t.Fatal("no notifications")
	}
	// Every vehicle's first report is a crossing, so there are at least as
	// many notifications as vehicles.
	if len(notes) < 60 {
		t.Errorf("notifications = %d", len(notes))
	}
	accidents := 0
	for _, n := range notes {
		if n.Accident {
			accidents++
			if n.Toll != 0 {
				t.Error("accident alerts are toll exempt")
			}
		}
	}
	if accidents == 0 {
		t.Error("no accident alerts despite injected accidents")
	}
}

func TestStopDetectionQuorum(t *testing.T) {
	logic := newTollLogic()
	r := Record{VID: 1, XWay: 0, Lane: 1, Dir: 0, Seg: 3, Pos: 3 * FeetPerSegment}
	for i := 0; i < StoppedQuorum-1; i++ {
		logic.observe(r)
	}
	if len(logic.stoppedAt) != 0 {
		t.Fatal("stopped too early")
	}
	logic.observe(r)
	if len(logic.stoppedAt) != 1 {
		t.Fatal("not stopped at quorum")
	}
	// One stopped vehicle is not an accident.
	if logic.accidentAhead(Record{XWay: 0, Dir: 0, Seg: 3}) {
		t.Error("single stopped vehicle should not be an accident")
	}
	// Second vehicle at the same spot: accident.
	r2 := r
	r2.VID = 2
	for i := 0; i < StoppedQuorum; i++ {
		logic.observe(r2)
	}
	if !logic.accidentAhead(Record{XWay: 0, Dir: 0, Seg: 3}) {
		t.Error("two stopped vehicles should be an accident")
	}
	// Upstream (dir 0 → smaller segments) within range sees it; beyond not.
	if !logic.accidentAhead(Record{XWay: 0, Dir: 0, Seg: 0}) {
		t.Error("segment 0 is within 4 of 3 in direction 0")
	}
	if logic.accidentAhead(Record{XWay: 0, Dir: 0, Seg: 4}) {
		t.Error("downstream traffic (already past) should not alert")
	}
	if logic.accidentAhead(Record{XWay: 0, Dir: 1, Seg: 2}) {
		t.Error("wrong direction should not alert")
	}
	// A vehicle moving again clears the accident.
	r2.Pos += 100
	logic.observe(r2)
	if logic.accidentAhead(Record{XWay: 0, Dir: 0, Seg: 3}) {
		t.Error("accident should clear when a vehicle moves")
	}
}

func TestChargeRules(t *testing.T) {
	logic := newTollLogic()
	mkStats := func(cnt int64, lav float64, ok bool) statsLookup {
		return func(_, _, _, _ int64) (int64, float64, bool) { return cnt, lav, ok }
	}
	r := Record{VID: 9, Time: 120, Seg: 10}
	// Congested and busy: charged.
	n := logic.charge(r, mkStats(80, 30, true))
	if n.Toll != 2*30*30 {
		t.Errorf("toll = %d", n.Toll)
	}
	// Fast traffic: free.
	if n := logic.charge(r, mkStats(80, 55, true)); n.Toll != 0 {
		t.Errorf("fast toll = %d", n.Toll)
	}
	// Quiet segment: free.
	if n := logic.charge(r, mkStats(50, 30, true)); n.Toll != 0 {
		t.Errorf("quiet toll = %d", n.Toll)
	}
	// No history: free.
	if n := logic.charge(r, mkStats(0, 0, false)); n.Toll != 0 {
		t.Errorf("no-history toll = %d", n.Toll)
	}
	// Minute zero: free.
	r0 := r
	r0.Time = 30
	if n := logic.charge(r0, mkStats(80, 30, true)); n.Toll != 0 {
		t.Errorf("minute-zero toll = %d", n.Toll)
	}
}

// The headline correctness check: the DataCell pipeline (SQL windowed
// statistics + toll processor) produces exactly the oracle's output.
func TestSystemMatchesReference(t *testing.T) {
	cfg := smallConfig()
	recs := Generate(cfg)
	want := Reference(recs)

	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(recs); err != nil {
		t.Fatal(err)
	}
	got := sys.Notifications()
	if len(got) != len(want) {
		t.Fatalf("notifications: got %d, want %d", len(got), len(want))
	}
	mismatches := 0
	for i := range want {
		if got[i] != want[i] {
			mismatches++
			if mismatches <= 5 {
				t.Errorf("notification %d: got %+v, want %+v", i, got[i], want[i])
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d of %d notifications differ", mismatches, len(want))
	}
	// Some toll was actually charged somewhere (the workload is dense
	// enough) — guards against vacuous agreement.
	var charged int64
	for _, n := range want {
		charged += n.Toll
	}
	if charged == 0 {
		t.Log("warning: scenario charged no tolls; congestion too light")
	}
	if sys.Latency.Count() == 0 {
		t.Error("no latency observations")
	}
}

func TestSystemMultiXWay(t *testing.T) {
	cfg := GenConfig{XWays: 2, VehiclesPerXWay: 40, DurationSec: 150, Seed: 7, AccidentEverySec: 60}
	recs := Generate(cfg)
	want := Reference(recs)
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(recs); err != nil {
		t.Fatal(err)
	}
	got := sys.Notifications()
	if len(got) != len(want) {
		t.Fatalf("notifications: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("notification %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestFeedRejectsWrongSecond(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	err = sys.Feed(5, []Record{{Time: 9}})
	if err == nil {
		t.Error("mis-timed batch should fail")
	}
}
