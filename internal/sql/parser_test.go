package sql

import (
	"strings"
	"testing"

	"repro/internal/vector"
)

func mustSelect(t *testing.T, q string) *SelectStmt {
	t.Helper()
	s, err := ParseSelect(q)
	if err != nil {
		t.Fatalf("ParseSelect(%q): %v", q, err)
	}
	return s
}

func TestParseCreateTable(t *testing.T) {
	st, err := Parse("CREATE TABLE t (a INT, b DOUBLE, c VARCHAR, d TIMESTAMP)")
	if err != nil {
		t.Fatal(err)
	}
	c := st.(*CreateStmt)
	if c.Basket || c.Name != "t" || len(c.Cols) != 4 {
		t.Fatalf("create = %+v", c)
	}
	if c.Cols[0].Type != vector.Int64 || c.Cols[1].Type != vector.Float64 ||
		c.Cols[2].Type != vector.String || c.Cols[3].Type != vector.Timestamp {
		t.Errorf("types = %+v", c.Cols)
	}
}

func TestParseCreateBasket(t *testing.T) {
	st, err := Parse("CREATE BASKET sensors (id INT, temp DOUBLE);")
	if err != nil {
		t.Fatal(err)
	}
	c := st.(*CreateStmt)
	if !c.Basket || c.Name != "sensors" {
		t.Fatalf("create = %+v", c)
	}
}

func TestParseCreateErrors(t *testing.T) {
	for _, q := range []string{
		"CREATE VIEW v (a INT)",
		"CREATE TABLE (a INT)",
		"CREATE TABLE t (a BLOB)",
		"CREATE TABLE t a INT",
	} {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestParseDrop(t *testing.T) {
	st, err := Parse("DROP BASKET sensors")
	if err != nil {
		t.Fatal(err)
	}
	d := st.(*DropStmt)
	if !d.Basket || d.Name != "sensors" {
		t.Errorf("drop = %+v", d)
	}
}

func TestParseInsert(t *testing.T) {
	st, err := Parse("INSERT INTO t VALUES (1, 2.5, 'x'), (2, -3.5, NULL)")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*InsertStmt)
	if ins.Table != "t" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 3 {
		t.Fatalf("insert = %+v", ins)
	}
	if lit := ins.Rows[1][1].(*UnaryExpr); lit.Op != "-" {
		t.Errorf("negative literal = %+v", lit)
	}
}

func TestParseSelectBasics(t *testing.T) {
	s := mustSelect(t, "SELECT a, b*2 AS dbl, * FROM t WHERE a > 1 AND b <= 2 ORDER BY a DESC, b LIMIT 5")
	if len(s.Items) != 3 || s.Items[0].Alias != "" || s.Items[1].Alias != "dbl" || !s.Items[2].Star {
		t.Fatalf("items = %+v", s.Items)
	}
	if len(s.From) != 1 || s.From[0].Table != "t" {
		t.Fatalf("from = %+v", s.From)
	}
	if s.Where == nil || len(s.OrderBy) != 2 || !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Fatalf("clauses = %+v", s)
	}
	if s.Limit != 5 {
		t.Errorf("limit = %d", s.Limit)
	}
}

func TestParseImplicitAlias(t *testing.T) {
	s := mustSelect(t, "SELECT a cnt FROM t x")
	if s.Items[0].Alias != "cnt" {
		t.Errorf("implicit expr alias = %q", s.Items[0].Alias)
	}
	if s.From[0].Alias != "x" {
		t.Errorf("implicit table alias = %q", s.From[0].Alias)
	}
}

func TestParseGroupByHaving(t *testing.T) {
	s := mustSelect(t, "SELECT k, COUNT(*) AS n, SUM(v) FROM t GROUP BY k HAVING COUNT(*) > 2")
	if len(s.GroupBy) != 1 || s.Having == nil {
		t.Fatalf("groupby = %+v having = %+v", s.GroupBy, s.Having)
	}
	c := s.Items[1].Expr.(*CallExpr)
	if c.Name != "COUNT" || !c.Star {
		t.Errorf("count(*) = %+v", c)
	}
	sum := s.Items[2].Expr.(*CallExpr)
	if sum.Name != "SUM" || sum.Arg == nil {
		t.Errorf("sum = %+v", sum)
	}
}

func TestParseJoin(t *testing.T) {
	s := mustSelect(t, "SELECT * FROM a JOIN b ON a.id = b.id, c")
	if len(s.From) != 3 {
		t.Fatalf("from = %+v", s.From)
	}
	if s.From[1].JoinOn == nil {
		t.Error("join condition missing")
	}
	if s.From[2].JoinOn != nil {
		t.Error("comma join should have no condition")
	}
	s = mustSelect(t, "SELECT * FROM a INNER JOIN b ON a.x = b.y")
	if s.From[1].JoinOn == nil {
		t.Error("INNER JOIN condition missing")
	}
}

func TestParseBasketExpression(t *testing.T) {
	s := mustSelect(t, "SELECT * FROM [SELECT * FROM R] AS S WHERE S.a > 10")
	if !s.IsContinuous() {
		t.Fatal("query with basket expression should be continuous")
	}
	f := s.From[0]
	if !f.Basket || f.Sub == nil || f.Alias != "S" {
		t.Fatalf("from = %+v", f)
	}
	if f.Sub.From[0].Table != "R" {
		t.Errorf("inner from = %+v", f.Sub.From)
	}
}

func TestParsePredicateWindowQ2(t *testing.T) {
	// Query q2 of the paper.
	s := mustSelect(t, "SELECT * FROM [SELECT * FROM R WHERE R.b < 20] AS S WHERE S.a > 10")
	if !s.IsContinuous() {
		t.Fatal("should be continuous")
	}
	if s.From[0].Sub.Where == nil {
		t.Error("inner where missing")
	}
}

func TestParsePlainSubquery(t *testing.T) {
	s := mustSelect(t, "SELECT * FROM (SELECT a FROM t) AS sub")
	if s.IsContinuous() {
		t.Error("parenthesized sub-query is not continuous")
	}
	if s.From[0].Sub == nil || s.From[0].Basket {
		t.Errorf("from = %+v", s.From[0])
	}
}

func TestParseSubqueryRequiresAlias(t *testing.T) {
	if _, err := ParseSelect("SELECT * FROM (SELECT a FROM t)"); err == nil {
		t.Error("sub-query without alias should fail")
	}
}

func TestParseWindowClause(t *testing.T) {
	s := mustSelect(t, "SELECT AVG(v) FROM [SELECT * FROM R] AS S WINDOW ROWS 100 SLIDE 10")
	if s.Window == nil || s.Window.Kind != WindowRows || s.Window.Size != 100 || s.Window.Slide != 10 {
		t.Fatalf("window = %+v", s.Window)
	}
	s = mustSelect(t, "SELECT AVG(v) FROM [SELECT * FROM R] AS S WINDOW RANGE 5000")
	if s.Window.Kind != WindowRange || s.Window.Slide != 5000 {
		t.Fatalf("tumbling default: %+v", s.Window)
	}
}

func TestParseWindowErrors(t *testing.T) {
	for _, q := range []string{
		"SELECT a FROM t WINDOW ROWS 0",
		"SELECT a FROM t WINDOW ROWS 10 SLIDE 20",
		"SELECT a FROM t WINDOW TUPLES 5",
	} {
		if _, err := ParseSelect(q); err == nil {
			t.Errorf("%q should fail", q)
		}
	}
}

func TestParseExprPrecedence(t *testing.T) {
	s := mustSelect(t, "SELECT 1+2*3 FROM t")
	e := s.Items[0].Expr.(*BinaryExpr)
	if e.Op != "+" {
		t.Fatalf("top op = %q", e.Op)
	}
	if r := e.R.(*BinaryExpr); r.Op != "*" {
		t.Errorf("rhs = %+v", r)
	}
	// AND binds tighter than OR.
	s = mustSelect(t, "SELECT * FROM t WHERE a OR b AND c")
	w := s.Where.(*BinaryExpr)
	if w.Op != "OR" {
		t.Fatalf("where top = %q", w.Op)
	}
}

func TestParseParenthesesOverridePrecedence(t *testing.T) {
	s := mustSelect(t, "SELECT (1+2)*3 FROM t")
	e := s.Items[0].Expr.(*BinaryExpr)
	if e.Op != "*" {
		t.Errorf("top op = %q, want *", e.Op)
	}
}

func TestParseBetween(t *testing.T) {
	s := mustSelect(t, "SELECT * FROM t WHERE a BETWEEN 1 AND 5")
	w := s.Where.(*BinaryExpr)
	if w.Op != "AND" {
		t.Fatalf("between desugar = %v", ExprString(w))
	}
	if l := w.L.(*BinaryExpr); l.Op != ">=" {
		t.Errorf("lo bound = %q", l.Op)
	}
	s = mustSelect(t, "SELECT * FROM t WHERE a NOT BETWEEN 1 AND 5")
	if _, ok := s.Where.(*UnaryExpr); !ok {
		t.Errorf("not between = %v", ExprString(s.Where))
	}
}

func TestParseIn(t *testing.T) {
	s := mustSelect(t, "SELECT * FROM t WHERE a IN (1, 2, 3)")
	w := s.Where.(*BinaryExpr)
	if w.Op != "OR" {
		t.Fatalf("in desugar = %v", ExprString(w))
	}
	s = mustSelect(t, "SELECT * FROM t WHERE a NOT IN (1)")
	if u, ok := s.Where.(*UnaryExpr); !ok || u.Op != "NOT" {
		t.Errorf("not in = %v", ExprString(s.Where))
	}
}

func TestParseIsNull(t *testing.T) {
	s := mustSelect(t, "SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL")
	w := s.Where.(*BinaryExpr)
	l := w.L.(*IsNullExpr)
	r := w.R.(*IsNullExpr)
	if l.Not || !r.Not {
		t.Errorf("is null = %+v %+v", l, r)
	}
}

func TestParseLiterals(t *testing.T) {
	s := mustSelect(t, "SELECT 1, 2.5, 'x', TRUE, FALSE, NULL FROM t")
	wantTypes := []vector.Type{vector.Int64, vector.Float64, vector.String, vector.Bool, vector.Bool, vector.Unknown}
	for i, w := range wantTypes {
		l := s.Items[i].Expr.(*Lit)
		if l.Val.Typ != w {
			t.Errorf("lit %d type = %v, want %v", i, l.Val.Typ, w)
		}
	}
	if !s.Items[5].Expr.(*Lit).Val.Null {
		t.Error("NULL literal should be null")
	}
}

func TestParseQualifiedIdent(t *testing.T) {
	s := mustSelect(t, "SELECT t.a FROM t")
	id := s.Items[0].Expr.(*Ident)
	if id.Qualifier != "t" || id.Name != "a" {
		t.Errorf("ident = %+v", id)
	}
}

func TestParseTrailingGarbage(t *testing.T) {
	if _, err := Parse("SELECT a FROM t garbage extra"); err == nil {
		// "garbage" binds as table alias; "extra" must fail.
		t.Error("trailing tokens should fail")
	}
}

func TestParseSelectOfNonSelect(t *testing.T) {
	if _, err := ParseSelect("CREATE TABLE t (a INT)"); err == nil {
		t.Error("ParseSelect of CREATE should fail")
	}
}

func TestExprAndStmtStrings(t *testing.T) {
	s := mustSelect(t, "SELECT COUNT(*), -a AS na FROM t WHERE NOT (a IS NULL) AND b IN (1,2)")
	if got := ExprString(s.Where); !strings.Contains(got, "IS NULL") {
		t.Errorf("ExprString = %q", got)
	}
	if StmtString(s) == "" {
		t.Error("StmtString empty")
	}
	for _, q := range []string{
		"CREATE BASKET b (a INT)",
		"INSERT INTO t VALUES (1)",
		"DROP TABLE t",
	} {
		st, err := Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		if StmtString(st) == "" {
			t.Errorf("StmtString(%q) empty", q)
		}
	}
}

func TestParseNestedBasketInSubquery(t *testing.T) {
	s := mustSelect(t, "SELECT * FROM (SELECT * FROM [SELECT * FROM R] AS inner1) AS outer1")
	if !s.IsContinuous() {
		t.Error("nested basket expression should make the query continuous")
	}
}
