// Package sql implements the DataCell SQL front end: a lexer, an abstract
// syntax tree, and a recursive-descent parser for the SQL subset the engine
// supports, extended with the paper's orthogonal continuous-query
// constructs (CREATE BASKET, and basket expressions written as a bracketed
// sub-query in FROM).
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer output.
type TokenKind uint8

// Token kinds.
const (
	TEOF TokenKind = iota
	TIdent
	TKeyword
	TNumber
	TString
	TOp    // + - * / % = <> != < <= > >= . ,
	TPunct // ( ) [ ] ;
)

// Token is one lexical unit. Keywords are upper-cased in Text; identifiers
// keep their original spelling.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int // byte offset in the input, for error messages
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "ASC": true, "DESC": true,
	"AS": true, "AND": true, "OR": true, "NOT": true, "NULL": true,
	"TRUE": true, "FALSE": true, "IS": true, "IN": true, "BETWEEN": true,
	"CREATE": true, "TABLE": true, "BASKET": true, "INSERT": true,
	"INTO": true, "VALUES": true, "DROP": true, "JOIN": true, "INNER": true,
	"ON": true, "DISTINCT": true, "COUNT": true, "SUM": true, "MIN": true,
	"MAX": true, "AVG": true, "DELETE": true, "WINDOW": true, "SLIDE": true,
	"RANGE": true, "ROWS": true, "EVERY": true, "CONTINUOUS": true,
	"QUERY": true, "WITH": true, "SHOW": true, "QUERIES": true,
	"BASKETS": true, "TABLES": true, "STREAMS": true, "SCHEDULER": true,
	"EXPLAIN": true, "ANALYZE": true, "TRACE": true,
}

// Lex tokenizes the input. It returns an error for unterminated strings or
// illegal characters.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(input[i+1])):
			start := i
			seenDot := false
			for i < n && (isDigit(input[i]) || (input[i] == '.' && !seenDot)) {
				if input[i] == '.' {
					seenDot = true
				}
				i++
			}
			// exponent
			if i < n && (input[i] == 'e' || input[i] == 'E') {
				j := i + 1
				if j < n && (input[j] == '+' || input[j] == '-') {
					j++
				}
				if j < n && isDigit(input[j]) {
					i = j
					for i < n && isDigit(input[i]) {
						i++
					}
				}
			}
			toks = append(toks, Token{Kind: TNumber, Text: input[start:i], Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, newParseError(input, start, "unterminated string")
			}
			toks = append(toks, Token{Kind: TString, Text: sb.String(), Pos: start})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{Kind: TKeyword, Text: up, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TIdent, Text: word, Pos: start})
			}
		case c == '(' || c == ')' || c == '[' || c == ']' || c == ';':
			toks = append(toks, Token{Kind: TPunct, Text: string(c), Pos: i})
			i++
		case c == '<':
			if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
				toks = append(toks, Token{Kind: TOp, Text: input[i : i+2], Pos: i})
				i += 2
			} else {
				toks = append(toks, Token{Kind: TOp, Text: "<", Pos: i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{Kind: TOp, Text: ">=", Pos: i})
				i += 2
			} else {
				toks = append(toks, Token{Kind: TOp, Text: ">", Pos: i})
				i++
			}
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{Kind: TOp, Text: "<>", Pos: i})
				i += 2
			} else {
				return nil, newParseError(input, i, "unexpected '!'")
			}
		case strings.ContainsRune("+-*/%=.,", rune(c)):
			toks = append(toks, Token{Kind: TOp, Text: string(c), Pos: i})
			i++
		default:
			return nil, newParseError(input, i, fmt.Sprintf("illegal character %q", c))
		}
	}
	toks = append(toks, Token{Kind: TEOF, Pos: n})
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || isDigit(c)
}
