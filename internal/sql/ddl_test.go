package sql

import (
	"errors"
	"strings"
	"testing"
)

func TestParseCreateContinuous(t *testing.T) {
	st, err := Parse(`CREATE CONTINUOUS QUERY hot
		WITH (strategy = shared, min_tuples = 64, priority = -2, polling = true)
		AS SELECT * FROM [SELECT * FROM sensors] AS x WHERE x.temp > 30.0;`)
	if err != nil {
		t.Fatal(err)
	}
	cc, ok := st.(*CreateContinuousStmt)
	if !ok {
		t.Fatalf("statement = %T", st)
	}
	if cc.Name != "hot" {
		t.Errorf("name = %q", cc.Name)
	}
	want := []OptionSpec{
		{Key: "strategy", Val: "shared"},
		{Key: "min_tuples", Val: "64"},
		{Key: "priority", Val: "-2"},
		{Key: "polling", Val: "true"},
	}
	if len(cc.Options) != len(want) {
		t.Fatalf("options = %v", cc.Options)
	}
	for i, w := range want {
		if cc.Options[i] != w {
			t.Errorf("option %d = %v, want %v", i, cc.Options[i], w)
		}
	}
	if cc.Select == nil || !cc.Select.IsContinuous() {
		t.Error("select not parsed as continuous")
	}
	if !strings.HasPrefix(cc.SelectText, "SELECT") || strings.HasSuffix(cc.SelectText, ";") {
		t.Errorf("select text = %q", cc.SelectText)
	}
}

func TestParseCreateContinuousNoOptions(t *testing.T) {
	st, err := Parse("CREATE CONTINUOUS QUERY q AS SELECT * FROM [SELECT * FROM s] AS x")
	if err != nil {
		t.Fatal(err)
	}
	cc := st.(*CreateContinuousStmt)
	if len(cc.Options) != 0 || cc.SelectText != "SELECT * FROM [SELECT * FROM s] AS x" {
		t.Errorf("parsed = %+v", cc)
	}
}

func TestParseDropContinuous(t *testing.T) {
	st, err := Parse("DROP CONTINUOUS QUERY hot")
	if err != nil {
		t.Fatal(err)
	}
	if dc, ok := st.(*DropContinuousStmt); !ok || dc.Name != "hot" {
		t.Errorf("statement = %#v", st)
	}
}

func TestParseShow(t *testing.T) {
	for text, want := range map[string]ShowKind{
		"SHOW QUERIES": ShowQueries,
		"SHOW BASKETS": ShowBaskets,
		"SHOW TABLES":  ShowTables,
		"SHOW STREAMS": ShowStreams,
	} {
		st, err := Parse(text)
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		if sh, ok := st.(*ShowStmt); !ok || sh.What != want {
			t.Errorf("%s = %#v", text, st)
		}
	}
	if _, err := Parse("SHOW NOTHING"); err == nil {
		t.Error("SHOW NOTHING should fail")
	}
}

func TestParseDDLErrors(t *testing.T) {
	for _, text := range []string{
		"CREATE CONTINUOUS",
		"CREATE CONTINUOUS QUERY",
		"CREATE CONTINUOUS QUERY q",
		"CREATE CONTINUOUS QUERY q AS",
		"CREATE CONTINUOUS QUERY q WITH () AS SELECT * FROM s",
		"CREATE CONTINUOUS QUERY q WITH (k = ) AS SELECT * FROM s",
		"CREATE CONTINUOUS QUERY q WITH (k = -x) AS SELECT * FROM s",
		"DROP CONTINUOUS q",
		"CREATE BASKET s (v INT) WITH",
		"CREATE BASKET s (v INT) WITH ()",
		"CREATE TABLE t (v INT) WITH (partitions = 4)",
	} {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) should fail", text)
		}
	}
}

// TestParseCreateBasketWithOptions covers the partitioned-stream DDL:
// CREATE BASKET ... WITH (partitions, partition_by).
func TestParseCreateBasketWithOptions(t *testing.T) {
	st, err := Parse("CREATE BASKET trades (sym VARCHAR, px DOUBLE) WITH (partitions = 8, partition_by = sym)")
	if err != nil {
		t.Fatal(err)
	}
	cr, ok := st.(*CreateStmt)
	if !ok || !cr.Basket {
		t.Fatalf("statement = %#v", st)
	}
	want := []OptionSpec{{Key: "partitions", Val: "8"}, {Key: "partition_by", Val: "sym"}}
	if len(cr.Options) != len(want) {
		t.Fatalf("options = %v", cr.Options)
	}
	for i, w := range want {
		if cr.Options[i] != w {
			t.Errorf("option %d = %v, want %v", i, cr.Options[i], w)
		}
	}
	// Plain CREATE BASKET keeps an empty option list.
	st, err = Parse("CREATE BASKET plain (v INT)")
	if err != nil {
		t.Fatal(err)
	}
	if cr := st.(*CreateStmt); len(cr.Options) != 0 {
		t.Errorf("options = %v", cr.Options)
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := Parse("SELECT a\nFROM t\nWHERE >")
	if err == nil {
		t.Fatal("expected error")
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("not a *ParseError: %T %v", err, err)
	}
	if pe.Line != 3 {
		t.Errorf("line = %d, want 3", pe.Line)
	}
	if pe.Col != 7 {
		t.Errorf("col = %d, want 7", pe.Col)
	}

	// Lexer failures carry positions too.
	_, err = Parse("SELECT 'unterminated")
	if !errors.As(err, &pe) {
		t.Fatalf("lex error not a *ParseError: %v", err)
	}
	if pe.Line != 1 || pe.Col != 8 {
		t.Errorf("lex position = line %d col %d", pe.Line, pe.Col)
	}
}

func TestSplitStatements(t *testing.T) {
	stmts, err := SplitStatements(`
		CREATE BASKET s (v INT);
		-- a comment; with a semicolon
		INSERT INTO s VALUES ('a;b');

		SELECT * FROM s
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("statements = %d: %q", len(stmts), stmts)
	}
	if !strings.Contains(stmts[1], "'a;b'") {
		t.Errorf("literal split: %q", stmts[1])
	}
	if _, err := SplitStatements("SELECT 'oops"); err == nil {
		t.Error("lex error should surface")
	}
	// Comment-only segments are not statements.
	stmts, err = SplitStatements("CREATE BASKET b (v INT); -- done\n")
	if err != nil || len(stmts) != 1 {
		t.Errorf("trailing comment: %q, %v", stmts, err)
	}
	stmts, err = SplitStatements("-- header only")
	if err != nil || len(stmts) != 0 {
		t.Errorf("comment-only script: %q, %v", stmts, err)
	}
}
