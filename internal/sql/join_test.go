package sql

import (
	"errors"
	"testing"
)

// JOIN ... ON ... WITHIN parses into FromItem.Within (nanoseconds).
func TestParseJoinWithin(t *testing.T) {
	cases := []struct {
		sql  string
		want int64
	}{
		{"SELECT * FROM a JOIN b ON a.x = b.y WITHIN '5s'", 5_000_000_000},
		{"SELECT * FROM a JOIN b ON a.x = b.y WITHIN '250ms'", 250_000_000},
		{"SELECT * FROM a JOIN b ON a.x = b.y WITHIN 100", 100},
		{"SELECT * FROM a JOIN b ON a.x = b.y", 0},
	}
	for _, c := range cases {
		st, err := Parse(c.sql)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		sel := st.(*SelectStmt)
		if len(sel.From) != 2 {
			t.Fatalf("%s: %d FROM items", c.sql, len(sel.From))
		}
		if got := sel.From[1].Within; got != c.want {
			t.Errorf("%s: Within = %d, want %d", c.sql, got, c.want)
		}
		if sel.From[1].JoinOn == nil {
			t.Errorf("%s: JoinOn missing", c.sql)
		}
	}
}

// WITHIN still composes with the clauses that follow the FROM list.
func TestParseJoinWithinThenWhere(t *testing.T) {
	st, err := Parse("SELECT * FROM a JOIN b ON a.x = b.y WITHIN '1s' WHERE a.x > 3 LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*SelectStmt)
	if sel.From[1].Within != 1_000_000_000 || sel.Where == nil || sel.Limit != 5 {
		t.Errorf("within=%d where=%v limit=%d", sel.From[1].Within, sel.Where, sel.Limit)
	}
}

// WITHIN is contextual, not reserved: "within" keeps working as a
// column or table name everywhere outside the post-ON position.
func TestWithinNotReserved(t *testing.T) {
	for _, q := range []string{
		"CREATE BASKET b (within INT, v INT)",
		"SELECT within FROM b WHERE within > 3",
		"SELECT t.within AS w FROM b AS t ORDER BY within",
		"SELECT * FROM a JOIN b ON a.x = b.within",
	} {
		if _, err := Parse(q); err != nil {
			t.Errorf("%s: %v", q, err)
		}
	}
}

// JOIN error paths are ParseErrors with a position, not panics or silent
// acceptance.
func TestParseJoinErrors(t *testing.T) {
	cases := []struct {
		name string
		sql  string
	}{
		{"missing-ON", "SELECT * FROM a JOIN b WHERE a.x = 1"},
		{"missing-condition", "SELECT * FROM a JOIN b ON"},
		{"missing-table", "SELECT * FROM a JOIN ON a.x = b.y"},
		{"inner-without-join", "SELECT * FROM a INNER b ON a.x = b.y"},
		{"within-missing-value", "SELECT * FROM a JOIN b ON a.x = b.y WITHIN"},
		{"within-bad-duration", "SELECT * FROM a JOIN b ON a.x = b.y WITHIN 'yesterday'"},
		{"within-negative", "SELECT * FROM a JOIN b ON a.x = b.y WITHIN '-5s'"},
		{"within-zero", "SELECT * FROM a JOIN b ON a.x = b.y WITHIN 0"},
		{"within-ident", "SELECT * FROM a JOIN b ON a.x = b.y WITHIN soon"},
	}
	for _, c := range cases {
		_, err := Parse(c.sql)
		if err == nil {
			t.Errorf("%s: parsed without error", c.name)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("%s: error %v is not a *ParseError", c.name, err)
		}
	}
}
