package sql

import "testing"

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasic(t *testing.T) {
	toks, err := Lex("SELECT a, b FROM t WHERE a >= 10")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind TokenKind
		text string
	}{
		{TKeyword, "SELECT"}, {TIdent, "a"}, {TOp, ","}, {TIdent, "b"},
		{TKeyword, "FROM"}, {TIdent, "t"}, {TKeyword, "WHERE"},
		{TIdent, "a"}, {TOp, ">="}, {TNumber, "10"}, {TEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("tok[%d] = {%d %q}, want {%d %q}", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	toks, _ := Lex("select From wHeRe")
	for _, tk := range toks[:3] {
		if tk.Kind != TKeyword {
			t.Errorf("%q should be a keyword", tk.Text)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	for _, s := range []string{"0", "42", "3.5", ".5", "1e6", "2.5E-3"} {
		toks, err := Lex(s)
		if err != nil {
			t.Fatalf("Lex(%q): %v", s, err)
		}
		if toks[0].Kind != TNumber || toks[0].Text != s {
			t.Errorf("Lex(%q) = %v", s, toks[0])
		}
	}
}

func TestLexString(t *testing.T) {
	toks, err := Lex("'hello world'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TString || toks[0].Text != "hello world" {
		t.Errorf("string token = %v", toks[0])
	}
	// Escaped quote.
	toks, _ = Lex("'it''s'")
	if toks[0].Text != "it's" {
		t.Errorf("escaped quote: %q", toks[0].Text)
	}
}

func TestLexUnterminatedString(t *testing.T) {
	if _, err := Lex("'oops"); err == nil {
		t.Error("unterminated string should fail")
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex("< <= > >= = <> != + - * / % . ,")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<", "<=", ">", ">=", "=", "<>", "<>", "+", "-", "*", "/", "%", ".", ","}
	for i, w := range want {
		if toks[i].Kind != TOp || toks[i].Text != w {
			t.Errorf("op[%d] = %v, want %q", i, toks[i], w)
		}
	}
}

func TestLexBrackets(t *testing.T) {
	toks, err := Lex("[ ] ( ) ;")
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range []string{"[", "]", "(", ")", ";"} {
		if toks[i].Kind != TPunct || toks[i].Text != w {
			t.Errorf("punct[%d] = %v, want %q", i, toks[i], w)
		}
	}
}

func TestLexComment(t *testing.T) {
	toks, err := Lex("SELECT -- the select list\n a")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[1].Text != "a" {
		t.Errorf("comment not skipped: %v", toks)
	}
}

func TestLexIllegalChar(t *testing.T) {
	if _, err := Lex("a ? b"); err == nil {
		t.Error("illegal char should fail")
	}
	if _, err := Lex("a ! b"); err == nil {
		t.Error("lone ! should fail")
	}
}

func TestLexEmpty(t *testing.T) {
	toks, err := Lex("   ")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 || toks[0].Kind != TEOF {
		t.Errorf("kinds = %v", kinds(toks))
	}
}
