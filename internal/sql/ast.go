package sql

import (
	"fmt"
	"strings"

	"repro/internal/vector"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// ColDef is one column in a CREATE statement.
type ColDef struct {
	Name string
	Type vector.Type
}

// CreateStmt is CREATE TABLE / CREATE BASKET. Baskets accept a trailing
// WITH (...) option list (partitions, partition_by) declaring sharded
// ingestion.
type CreateStmt struct {
	Name    string
	Basket  bool
	Cols    []ColDef
	Options []OptionSpec
}

func (*CreateStmt) stmt() {}

// DropStmt is DROP TABLE / DROP BASKET.
type DropStmt struct {
	Name   string
	Basket bool
}

func (*DropStmt) stmt() {}

// OptionSpec is one key = value pair of a WITH (...) option list. Values
// keep their source spelling; the engine interprets them per key.
type OptionSpec struct {
	Key string
	Val string
}

// CreateContinuousStmt is the continuous-query DDL:
//
//	CREATE CONTINUOUS QUERY <name>
//	    [WITH (strategy = shared, min_tuples = 64, ...)]
//	    AS SELECT ...
//
// Select is the parsed standing query; SelectText is its original source
// text (kept so the engine can record the query verbatim).
type CreateContinuousStmt struct {
	Name       string
	Options    []OptionSpec
	Select     *SelectStmt
	SelectText string
}

func (*CreateContinuousStmt) stmt() {}

// DropContinuousStmt is DROP CONTINUOUS QUERY <name>.
type DropContinuousStmt struct {
	Name string
}

func (*DropContinuousStmt) stmt() {}

// ShowKind enumerates the SHOW introspection statements.
type ShowKind uint8

// SHOW targets.
const (
	ShowQueries ShowKind = iota
	ShowBaskets
	ShowTables
	ShowStreams
	ShowScheduler
	ShowTrace
)

// String names the target.
func (k ShowKind) String() string {
	switch k {
	case ShowBaskets:
		return "BASKETS"
	case ShowTables:
		return "TABLES"
	case ShowStreams:
		return "STREAMS"
	case ShowScheduler:
		return "SCHEDULER"
	case ShowTrace:
		return "TRACE"
	default:
		return "QUERIES"
	}
}

// ShowStmt is SHOW QUERIES / SHOW BASKETS / SHOW TABLES / SHOW STREAMS /
// SHOW SCHEDULER / SHOW TRACE <query>.
type ShowStmt struct {
	What ShowKind
	Name string // continuous-query name for SHOW TRACE
}

func (*ShowStmt) stmt() {}

// ExplainStmt is EXPLAIN ANALYZE <query>: render the named continuous
// query's live pipeline topology annotated with cumulative counters.
type ExplainStmt struct {
	Target string
}

func (*ExplainStmt) stmt() {}

// InsertStmt is INSERT INTO t VALUES (...), (...).
type InsertStmt struct {
	Table string
	Rows  [][]Expr // literal expressions only
}

func (*InsertStmt) stmt() {}

// SelectItem is one output of a SELECT list.
type SelectItem struct {
	Star  bool   // SELECT *
	Expr  Expr   // nil when Star
	Alias string // optional AS name
}

// FromItem is one entry of the FROM clause. Exactly one of Table or Sub is
// set. Basket marks the paper's bracketed basket expression `[select …]`,
// whose referenced tuples are consumed from the underlying basket.
type FromItem struct {
	Table  string
	Sub    *SelectStmt
	Basket bool
	Alias  string
	// JoinOn, when non-nil, joins this item to the accumulated left input
	// (written as JOIN … ON …). Nil means cross product (comma syntax).
	JoinOn Expr
	// Within is the join's time bound in nanoseconds (JOIN … ON … WITHIN
	// '5s'): rows match only when their timestamps differ by at most
	// Within. 0 means unbounded. Streaming joins use it to expire
	// symmetric-hash state behind the watermark.
	Within int64
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// WindowKind distinguishes count- and time-based windows.
type WindowKind uint8

// Window kinds.
const (
	WindowNone  WindowKind = iota
	WindowRows             // count-based, over arrival order
	WindowRange            // time-based, over the basket's ts column
)

// WindowClause is the DataCell window extension:
//
//	WINDOW ROWS n SLIDE s   — count-based sliding window
//	WINDOW RANGE n SLIDE s  — time-based sliding window over ts (nanoseconds)
//
// SLIDE defaults to the window size (a tumbling window).
type WindowClause struct {
	Kind  WindowKind
	Size  int64
	Slide int64
}

// SelectStmt is a (possibly continuous) SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []FromItem
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 when absent
	Window   *WindowClause
}

func (*SelectStmt) stmt() {}

// IsContinuous reports whether the statement is a continuous query: per the
// paper (§2.6), a query is continuous iff it contains a basket expression.
func (s *SelectStmt) IsContinuous() bool {
	for _, f := range s.From {
		if f.Basket {
			return true
		}
		if f.Sub != nil && f.Sub.IsContinuous() {
			return true
		}
	}
	return false
}

// Expr is an unresolved (pre-planning) expression node.
type Expr interface{ expr() }

// Ident is a possibly qualified column reference.
type Ident struct {
	Qualifier string // table alias; empty if unqualified
	Name      string
}

func (*Ident) expr() {}

// String renders the reference.
func (i *Ident) String() string {
	if i.Qualifier != "" {
		return i.Qualifier + "." + i.Name
	}
	return i.Name
}

// Lit is a literal value.
type Lit struct{ Val vector.Value }

func (*Lit) expr() {}

// UnaryExpr is -e or NOT e.
type UnaryExpr struct {
	Op string // "-" or "NOT"
	E  Expr
}

func (*UnaryExpr) expr() {}

// BinaryExpr applies an infix operator: + - * / % = <> < <= > >= AND OR.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

func (*BinaryExpr) expr() {}

// IsNullExpr is e IS [NOT] NULL.
type IsNullExpr struct {
	E   Expr
	Not bool
}

func (*IsNullExpr) expr() {}

// CallExpr is an aggregate call: COUNT(*|e), SUM(e), MIN(e), MAX(e),
// AVG(e), or COUNT(DISTINCT e).
type CallExpr struct {
	Name     string // upper-case
	Star     bool   // COUNT(*)
	Distinct bool   // COUNT(DISTINCT e)
	Arg      Expr   // nil when Star
}

func (*CallExpr) expr() {}

// ExprString renders an expression for diagnostics.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *Ident:
		return x.String()
	case *Lit:
		if x.Val.Typ == vector.String && !x.Val.Null {
			return "'" + x.Val.S + "'"
		}
		return x.Val.String()
	case *UnaryExpr:
		return fmt.Sprintf("(%s %s)", x.Op, ExprString(x.E))
	case *BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", ExprString(x.L), x.Op, ExprString(x.R))
	case *IsNullExpr:
		if x.Not {
			return fmt.Sprintf("(%s IS NOT NULL)", ExprString(x.E))
		}
		return fmt.Sprintf("(%s IS NULL)", ExprString(x.E))
	case *CallExpr:
		if x.Star {
			return x.Name + "(*)"
		}
		if x.Distinct {
			return fmt.Sprintf("%s(DISTINCT %s)", x.Name, ExprString(x.Arg))
		}
		return fmt.Sprintf("%s(%s)", x.Name, ExprString(x.Arg))
	default:
		return "?"
	}
}

// StmtString renders a statement for diagnostics.
func StmtString(s Statement) string {
	switch x := s.(type) {
	case *SelectStmt:
		var b strings.Builder
		b.WriteString("SELECT ")
		for i, it := range x.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			if it.Star {
				b.WriteString("*")
			} else {
				b.WriteString(ExprString(it.Expr))
				if it.Alias != "" {
					b.WriteString(" AS " + it.Alias)
				}
			}
		}
		b.WriteString(" FROM …")
		return b.String()
	case *CreateStmt:
		kind := "TABLE"
		if x.Basket {
			kind = "BASKET"
		}
		return fmt.Sprintf("CREATE %s %s", kind, x.Name)
	case *InsertStmt:
		return fmt.Sprintf("INSERT INTO %s (%d rows)", x.Table, len(x.Rows))
	case *DropStmt:
		return fmt.Sprintf("DROP %s", x.Name)
	case *CreateContinuousStmt:
		return fmt.Sprintf("CREATE CONTINUOUS QUERY %s", x.Name)
	case *DropContinuousStmt:
		return fmt.Sprintf("DROP CONTINUOUS QUERY %s", x.Name)
	case *ShowStmt:
		if x.What == ShowTrace {
			return fmt.Sprintf("SHOW TRACE %s", x.Name)
		}
		return fmt.Sprintf("SHOW %s", x.What)
	case *ExplainStmt:
		return fmt.Sprintf("EXPLAIN ANALYZE %s", x.Target)
	default:
		return "?"
	}
}
