package sql

import "fmt"

// ParseError is a lexer or parser failure carrying the source position of
// the offending token. Callers assert it with errors.As.
type ParseError struct {
	Msg  string
	Pos  int // byte offset in the input
	Line int // 1-based
	Col  int // 1-based, in bytes
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("sql: %s (line %d, column %d)", e.Msg, e.Line, e.Col)
}

// newParseError locates pos within src and builds the error.
func newParseError(src string, pos int, msg string) *ParseError {
	if pos > len(src) {
		pos = len(src)
	}
	line, col := 1, 1
	for i := 0; i < pos; i++ {
		if src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return &ParseError{Msg: msg, Pos: pos, Line: line, Col: col}
}
