package sql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/vector"
)

// Parse parses one SQL statement (a trailing semicolon is allowed).
func Parse(input string) (Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: input}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(TPunct, ";")
	if p.peek().Kind != TEOF {
		return nil, p.errorf("unexpected %q after statement", p.peek().Text)
	}
	return st, nil
}

// ParseSelect parses a statement and requires it to be a SELECT.
func ParseSelect(input string) (*SelectStmt, error) {
	st, err := Parse(input)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: expected a SELECT statement")
	}
	return sel, nil
}

type parser struct {
	toks []Token
	pos  int
	src  string
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errorf(format string, args ...interface{}) error {
	return newParseError(p.src, p.peek().Pos, fmt.Sprintf(format, args...))
}

// accept consumes the next token if it matches kind and (case-sensitive on
// canonical text) value; it reports whether it did.
func (p *parser) accept(kind TokenKind, text string) bool {
	t := p.peek()
	if t.Kind == kind && t.Text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokenKind, text string) error {
	if !p.accept(kind, text) {
		return p.errorf("expected %q, found %q", text, p.peek().Text)
	}
	return nil
}

func (p *parser) acceptKeyword(kw string) bool { return p.accept(TKeyword, kw) }

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %q", kw, p.peek().Text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.Kind != TIdent {
		return "", p.errorf("expected identifier, found %q", t.Text)
	}
	p.pos++
	return t.Text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	switch t := p.peek(); {
	case t.Kind == TKeyword && t.Text == "SELECT":
		return p.parseSelect()
	case t.Kind == TKeyword && t.Text == "CREATE":
		return p.parseCreate()
	case t.Kind == TKeyword && t.Text == "INSERT":
		return p.parseInsert()
	case t.Kind == TKeyword && t.Text == "DROP":
		return p.parseDrop()
	case t.Kind == TKeyword && t.Text == "SHOW":
		return p.parseShow()
	case t.Kind == TKeyword && t.Text == "EXPLAIN":
		return p.parseExplain()
	default:
		return nil, p.errorf("expected statement, found %q", t.Text)
	}
}

func (p *parser) parseShow() (Statement, error) {
	if err := p.expectKeyword("SHOW"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKeyword("QUERIES"):
		return &ShowStmt{What: ShowQueries}, nil
	case p.acceptKeyword("BASKETS"):
		return &ShowStmt{What: ShowBaskets}, nil
	case p.acceptKeyword("TABLES"):
		return &ShowStmt{What: ShowTables}, nil
	case p.acceptKeyword("STREAMS"):
		return &ShowStmt{What: ShowStreams}, nil
	case p.acceptKeyword("SCHEDULER"):
		return &ShowStmt{What: ShowScheduler}, nil
	case p.acceptKeyword("TRACE"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &ShowStmt{What: ShowTrace, Name: name}, nil
	default:
		return nil, p.errorf("expected QUERIES, BASKETS, TABLES, STREAMS, SCHEDULER, or TRACE after SHOW")
	}
}

func (p *parser) parseExplain() (Statement, error) {
	if err := p.expectKeyword("EXPLAIN"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ANALYZE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &ExplainStmt{Target: name}, nil
}

func (p *parser) parseCreate() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	basket := false
	switch {
	case p.acceptKeyword("TABLE"):
	case p.acceptKeyword("BASKET"):
		basket = true
	case p.peek().Kind == TKeyword && p.peek().Text == "CONTINUOUS":
		return p.parseCreateContinuous()
	default:
		return nil, p.errorf("expected TABLE, BASKET, or CONTINUOUS QUERY")
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect(TPunct, "("); err != nil {
		return nil, err
	}
	var cols []ColDef
	for {
		cname, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		t := p.peek()
		if t.Kind != TIdent && t.Kind != TKeyword {
			return nil, p.errorf("expected type name, found %q", t.Text)
		}
		p.pos++
		typ, err := vector.ParseType(t.Text)
		if err != nil {
			return nil, err
		}
		cols = append(cols, ColDef{Name: cname, Type: typ})
		if p.accept(TOp, ",") {
			continue
		}
		break
	}
	if err := p.expect(TPunct, ")"); err != nil {
		return nil, err
	}
	st := &CreateStmt{Name: name, Basket: basket, Cols: cols}
	if p.acceptKeyword("WITH") {
		if !basket {
			return nil, p.errorf("WITH options apply to CREATE BASKET only")
		}
		opts, err := p.parseOptionList()
		if err != nil {
			return nil, err
		}
		st.Options = opts
	}
	return st, nil
}

// parseOptionList parses a parenthesized key = value list (WITH is
// already consumed).
func (p *parser) parseOptionList() ([]OptionSpec, error) {
	if err := p.expect(TPunct, "("); err != nil {
		return nil, err
	}
	var out []OptionSpec
	for {
		opt, err := p.parseOption()
		if err != nil {
			return nil, err
		}
		out = append(out, *opt)
		if p.accept(TOp, ",") {
			continue
		}
		break
	}
	if err := p.expect(TPunct, ")"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) parseDrop() (Statement, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	basket := false
	switch {
	case p.acceptKeyword("TABLE"):
	case p.acceptKeyword("BASKET"):
		basket = true
	case p.acceptKeyword("CONTINUOUS"):
		if err := p.expectKeyword("QUERY"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &DropContinuousStmt{Name: name}, nil
	default:
		return nil, p.errorf("expected TABLE, BASKET, or CONTINUOUS QUERY")
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &DropStmt{Name: name, Basket: basket}, nil
}

// parseCreateContinuous parses the continuous-query DDL. CREATE is already
// consumed:
//
//	CONTINUOUS QUERY <name> [WITH (key = value, ...)] AS <select>
func (p *parser) parseCreateContinuous() (Statement, error) {
	if err := p.expectKeyword("CONTINUOUS"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("QUERY"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &CreateContinuousStmt{Name: name}
	if p.acceptKeyword("WITH") {
		opts, err := p.parseOptionList()
		if err != nil {
			return nil, err
		}
		st.Options = opts
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	selStart := p.peek().Pos
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	st.Select = sel
	st.SelectText = strings.TrimRight(strings.TrimSpace(p.src[selStart:]), "; \t\n\r")
	return st, nil
}

// parseOption parses one key = value pair of a WITH list. Values are kept
// as their source spelling: an identifier, a string, a boolean, or a
// (possibly negative) number.
func (p *parser) parseOption() (*OptionSpec, error) {
	key, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect(TOp, "="); err != nil {
		return nil, err
	}
	neg := p.accept(TOp, "-")
	t := p.peek()
	switch {
	case t.Kind == TNumber:
		p.pos++
		val := t.Text
		if neg {
			val = "-" + val
		}
		return &OptionSpec{Key: key, Val: val}, nil
	case neg:
		return nil, p.errorf("expected number after '-' in option %s", key)
	case t.Kind == TIdent || t.Kind == TString:
		p.pos++
		return &OptionSpec{Key: key, Val: t.Text}, nil
	case t.Kind == TKeyword && (t.Text == "TRUE" || t.Text == "FALSE"):
		p.pos++
		return &OptionSpec{Key: key, Val: strings.ToLower(t.Text)}, nil
	default:
		return nil, p.errorf("expected option value, found %q", t.Text)
	}
}

// SplitStatements cuts a script into statements at top-level semicolons,
// respecting string literals and comments (it tokenizes the whole script
// first). Whitespace-only statements are dropped.
func SplitStatements(script string) ([]string, error) {
	toks, err := Lex(script)
	if err != nil {
		return nil, err
	}
	var out []string
	start := 0
	seen := false // any real token since the last boundary (comments lex to nothing)
	flush := func(end int) {
		if seen {
			if s := strings.TrimSpace(script[start:end]); s != "" {
				out = append(out, s)
			}
		}
		seen = false
	}
	for _, t := range toks {
		if t.Kind == TPunct && t.Text == ";" {
			flush(t.Pos)
			start = t.Pos + 1
		} else if t.Kind != TEOF {
			seen = true
		}
	}
	flush(len(script))
	return out, nil
}

func (p *parser) parseInsert() (Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	var rows [][]Expr
	for {
		if err := p.expect(TPunct, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(TOp, ",") {
				continue
			}
			break
		}
		if err := p.expect(TPunct, ")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if p.accept(TOp, ",") {
			continue
		}
		break
	}
	return &InsertStmt{Table: name, Rows: rows}, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{Limit: -1}
	if p.acceptKeyword("DISTINCT") {
		sel.Distinct = true
	}

	// Select list.
	for {
		if p.accept(TOp, "*") {
			sel.Items = append(sel.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				alias, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			} else if p.peek().Kind == TIdent {
				item.Alias = p.next().Text
			}
			sel.Items = append(sel.Items, item)
		}
		if p.accept(TOp, ",") {
			continue
		}
		break
	}

	// FROM.
	if p.acceptKeyword("FROM") {
		item, err := p.parseFromItem(nil)
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, *item)
		for {
			if p.accept(TOp, ",") {
				item, err := p.parseFromItem(nil)
				if err != nil {
					return nil, err
				}
				sel.From = append(sel.From, *item)
				continue
			}
			if p.acceptKeyword("INNER") {
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
			} else if !p.acceptKeyword("JOIN") {
				break
			}
			item, err := p.parseFromItem(nil)
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item.JoinOn = on
			// WITHIN is contextual, not reserved: only this position after
			// a JOIN condition reads it, so columns named "within" keep
			// working everywhere else.
			if t := p.peek(); t.Kind == TIdent && strings.EqualFold(t.Text, "WITHIN") {
				p.pos++
				within, err := p.parseDuration()
				if err != nil {
					return nil, err
				}
				item.Within = within
			}
			sel.From = append(sel.From, *item)
		}
	}

	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(TOp, ",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			it := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				it.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, it)
			if !p.accept(TOp, ",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.Kind != TNumber {
			return nil, p.errorf("expected number after LIMIT")
		}
		p.pos++
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errorf("invalid LIMIT %q", t.Text)
		}
		sel.Limit = n
	}
	if p.acceptKeyword("WINDOW") {
		w, err := p.parseWindow()
		if err != nil {
			return nil, err
		}
		sel.Window = w
	}
	return sel, nil
}

// parseDuration reads a positive time bound: a bare integer is
// nanoseconds, a string literal goes through time.ParseDuration
// (WITHIN '5s').
func (p *parser) parseDuration() (int64, error) {
	t := p.peek()
	switch t.Kind {
	case TNumber:
		p.pos++
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil || n <= 0 {
			return 0, p.errorf("invalid duration %q (want positive nanoseconds)", t.Text)
		}
		return n, nil
	case TString:
		p.pos++
		d, err := time.ParseDuration(t.Text)
		if err != nil || d <= 0 {
			return 0, p.errorf("invalid duration %q (want e.g. '5s')", t.Text)
		}
		return d.Nanoseconds(), nil
	default:
		return 0, p.errorf("expected a duration, found %q", t.Text)
	}
}

func (p *parser) parseWindow() (*WindowClause, error) {
	w := &WindowClause{}
	switch {
	case p.acceptKeyword("ROWS"):
		w.Kind = WindowRows
	case p.acceptKeyword("RANGE"):
		w.Kind = WindowRange
	default:
		return nil, p.errorf("expected ROWS or RANGE after WINDOW")
	}
	t := p.peek()
	if t.Kind != TNumber {
		return nil, p.errorf("expected window size")
	}
	p.pos++
	size, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil || size <= 0 {
		return nil, p.errorf("invalid window size %q", t.Text)
	}
	w.Size = size
	w.Slide = size // tumbling by default
	if p.acceptKeyword("SLIDE") {
		t := p.peek()
		if t.Kind != TNumber {
			return nil, p.errorf("expected slide size")
		}
		p.pos++
		slide, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil || slide <= 0 || slide > size {
			return nil, p.errorf("invalid slide %q (must be in 1..window size)", t.Text)
		}
		w.Slide = slide
	}
	return w, nil
}

// parseFromItem parses one FROM entry: a table name, a parenthesized
// sub-query, or a bracketed basket expression.
func (p *parser) parseFromItem(_ *FromItem) (*FromItem, error) {
	item := &FromItem{}
	switch {
	case p.accept(TPunct, "["):
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TPunct, "]"); err != nil {
			return nil, err
		}
		item.Sub = sub
		item.Basket = true
	case p.accept(TPunct, "("):
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TPunct, ")"); err != nil {
			return nil, err
		}
		item.Sub = sub
	default:
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		item.Table = name
	}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		item.Alias = alias
	} else if p.peek().Kind == TIdent {
		item.Alias = p.next().Text
	}
	if item.Sub != nil && item.Alias == "" {
		return nil, p.errorf("sub-query in FROM requires an alias")
	}
	return item, nil
}

// Expression grammar (loosest to tightest):
//
//	orExpr    := andExpr (OR andExpr)*
//	andExpr   := notExpr (AND notExpr)*
//	notExpr   := NOT notExpr | cmpExpr
//	cmpExpr   := addExpr (cmpOp addExpr | IS [NOT] NULL
//	             | [NOT] BETWEEN addExpr AND addExpr
//	             | [NOT] IN (expr, …))?
//	addExpr   := mulExpr (("+"|"-") mulExpr)*
//	mulExpr   := unary (("*"|"/"|"%") unary)*
//	unary     := "-" unary | primary
//	primary   := literal | ident[.ident] | agg(…) | "(" orExpr ")"
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", E: e}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKeyword("IS") {
		not := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{E: l, Not: not}, nil
	}
	// [NOT] BETWEEN / IN
	negate := false
	if p.peek().Kind == TKeyword && p.peek().Text == "NOT" {
		save := p.pos
		p.pos++
		if p.peek().Text == "BETWEEN" || p.peek().Text == "IN" {
			negate = true
		} else {
			p.pos = save
		}
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		e := Expr(&BinaryExpr{Op: "AND",
			L: &BinaryExpr{Op: ">=", L: l, R: lo},
			R: &BinaryExpr{Op: "<=", L: l, R: hi}})
		if negate {
			e = &UnaryExpr{Op: "NOT", E: e}
		}
		return e, nil
	}
	if p.acceptKeyword("IN") {
		if err := p.expect(TPunct, "("); err != nil {
			return nil, err
		}
		var alts Expr
		for {
			item, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			eq := &BinaryExpr{Op: "=", L: l, R: item}
			if alts == nil {
				alts = eq
			} else {
				alts = &BinaryExpr{Op: "OR", L: alts, R: eq}
			}
			if !p.accept(TOp, ",") {
				break
			}
		}
		if err := p.expect(TPunct, ")"); err != nil {
			return nil, err
		}
		if negate {
			return &UnaryExpr{Op: "NOT", E: alts}, nil
		}
		return alts, nil
	}
	t := p.peek()
	if t.Kind == TOp {
		switch t.Text {
		case "=", "<>", "<", "<=", ">", ">=":
			p.pos++
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: t.Text, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TOp && (t.Text == "+" || t.Text == "-") {
			p.pos++
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: t.Text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TOp && (t.Text == "*" || t.Text == "/" || t.Text == "%") {
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: t.Text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(TOp, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

var aggNames = map[string]bool{"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TNumber:
		p.pos++
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("invalid number %q", t.Text)
			}
			return &Lit{Val: vector.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("invalid number %q", t.Text)
		}
		return &Lit{Val: vector.NewInt(i)}, nil
	case t.Kind == TString:
		p.pos++
		return &Lit{Val: vector.NewString(t.Text)}, nil
	case t.Kind == TKeyword && t.Text == "NULL":
		p.pos++
		return &Lit{Val: vector.NullValue(vector.Unknown)}, nil
	case t.Kind == TKeyword && t.Text == "TRUE":
		p.pos++
		return &Lit{Val: vector.NewBool(true)}, nil
	case t.Kind == TKeyword && t.Text == "FALSE":
		p.pos++
		return &Lit{Val: vector.NewBool(false)}, nil
	case t.Kind == TKeyword && aggNames[t.Text]:
		p.pos++
		name := t.Text
		if err := p.expect(TPunct, "("); err != nil {
			return nil, err
		}
		if name == "COUNT" && p.accept(TOp, "*") {
			if err := p.expect(TPunct, ")"); err != nil {
				return nil, err
			}
			return &CallExpr{Name: name, Star: true}, nil
		}
		distinct := false
		if p.acceptKeyword("DISTINCT") {
			if name != "COUNT" {
				return nil, p.errorf("DISTINCT is only supported in COUNT")
			}
			distinct = true
		}
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TPunct, ")"); err != nil {
			return nil, err
		}
		return &CallExpr{Name: name, Distinct: distinct, Arg: arg}, nil
	case t.Kind == TIdent:
		p.pos++
		name := t.Text
		if p.accept(TOp, ".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &Ident{Qualifier: name, Name: col}, nil
		}
		return &Ident{Name: name}, nil
	case t.Kind == TPunct && t.Text == "(":
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errorf("unexpected %q in expression", t.Text)
	}
}
