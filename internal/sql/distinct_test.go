package sql

import "testing"

func TestParseSelectDistinct(t *testing.T) {
	s := mustSelect(t, "SELECT DISTINCT a, b FROM t")
	if !s.Distinct {
		t.Error("Distinct flag not set")
	}
	s = mustSelect(t, "SELECT a FROM t")
	if s.Distinct {
		t.Error("Distinct flag set without keyword")
	}
}

func TestParseCountDistinct(t *testing.T) {
	s := mustSelect(t, "SELECT COUNT(DISTINCT a) FROM t")
	c := s.Items[0].Expr.(*CallExpr)
	if !c.Distinct || c.Star || c.Arg == nil {
		t.Errorf("call = %+v", c)
	}
	if got := ExprString(c); got != "COUNT(DISTINCT a)" {
		t.Errorf("ExprString = %q", got)
	}
}

func TestParseDistinctOnlyForCount(t *testing.T) {
	for _, q := range []string{
		"SELECT SUM(DISTINCT a) FROM t",
		"SELECT AVG(DISTINCT a) FROM t",
		"SELECT MIN(DISTINCT a) FROM t",
	} {
		if _, err := ParseSelect(q); err == nil {
			t.Errorf("%q should fail to parse", q)
		}
	}
}

func TestParseDistinctWithEverything(t *testing.T) {
	s := mustSelect(t,
		"SELECT DISTINCT k, COUNT(DISTINCT v) AS dv FROM t GROUP BY k HAVING COUNT(*) > 1 ORDER BY k LIMIT 5")
	if !s.Distinct || s.Limit != 5 || len(s.GroupBy) != 1 {
		t.Errorf("stmt = %+v", s)
	}
}
