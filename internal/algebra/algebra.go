// Package algebra implements the vectorized relational primitives of the
// kernel: selections producing candidate lists, hash joins, grouping,
// aggregation, sorting, and distinct. Each function is the Go analogue of a
// MAL operator: it consumes whole columns and produces whole columns, the
// operator-at-a-time bulk model the DataCell relies on.
package algebra

import (
	"sort"

	"repro/internal/bat"
	"repro/internal/vector"
)

// CmpOp enumerates the comparison operators of theta-selections.
type CmpOp uint8

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String returns the SQL spelling of the operator.
func (o CmpOp) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return "?"
	}
}

// Holds reports whether the comparison result c (as returned by
// vector.Compare) satisfies the operator.
func (o CmpOp) Holds(c int) bool {
	switch o {
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	case Ge:
		return c >= 0
	default:
		return false
	}
}

// ThetaSelect returns the candidates in cands whose value in v satisfies
// `v[i] op val`. NULLs never qualify. A nil cands means all positions.
// Int64/Timestamp and Float64 columns take fast typed paths.
func ThetaSelect(v *vector.Vector, cands bat.Candidates, op CmpOp, val vector.Value) bat.Candidates {
	if cands == nil {
		cands = bat.All(v.Len())
	}
	out := make(bat.Candidates, 0, len(cands))
	if val.Null {
		return out // nothing compares to NULL
	}
	switch v.Type() {
	case vector.Int64, vector.Timestamp:
		xs := v.Ints()
		c := val.AsInt()
		for _, p := range cands {
			if v.IsNull(p) {
				continue
			}
			x := xs[p]
			var cmp int
			switch {
			case x < c:
				cmp = -1
			case x > c:
				cmp = 1
			}
			if op.Holds(cmp) {
				out = append(out, p)
			}
		}
	case vector.Float64:
		xs := v.Floats()
		c := val.AsFloat()
		for _, p := range cands {
			if v.IsNull(p) {
				continue
			}
			x := xs[p]
			var cmp int
			switch {
			case x < c:
				cmp = -1
			case x > c:
				cmp = 1
			}
			if op.Holds(cmp) {
				out = append(out, p)
			}
		}
	default:
		for _, p := range cands {
			if v.IsNull(p) {
				continue
			}
			if op.Holds(vector.Compare(v.Get(p), val)) {
				out = append(out, p)
			}
		}
	}
	return out
}

// RangeSelect returns the candidates whose value lies in the interval
// [lo, hi] with configurable bound inclusivity. NULL bounds mean unbounded
// on that side. NULL values never qualify.
func RangeSelect(v *vector.Vector, cands bat.Candidates, lo, hi vector.Value, loIncl, hiIncl bool) bat.Candidates {
	if cands == nil {
		cands = bat.All(v.Len())
	}
	out := make(bat.Candidates, 0, len(cands))
	for _, p := range cands {
		if v.IsNull(p) {
			continue
		}
		x := v.Get(p)
		if !lo.Null {
			c := vector.Compare(x, lo)
			if c < 0 || (c == 0 && !loIncl) {
				continue
			}
		}
		if !hi.Null {
			c := vector.Compare(x, hi)
			if c > 0 || (c == 0 && !hiIncl) {
				continue
			}
		}
		out = append(out, p)
	}
	return out
}

// MaskSelect filters cands through a Bool vector aligned with cands: the
// i-th candidate survives iff mask[i] is true and not NULL. This is how a
// computed predicate column becomes a candidate list.
func MaskSelect(mask *vector.Vector, cands bat.Candidates) bat.Candidates {
	if cands == nil {
		cands = bat.All(mask.Len())
	}
	out := make(bat.Candidates, 0, len(cands))
	bs := mask.Bools()
	for i, p := range cands {
		if mask.IsNull(i) || !bs[i] {
			continue
		}
		out = append(out, p)
	}
	return out
}

// key normalizes a Value for use as a hash key: the payload of NULLs is
// zeroed so all NULLs of a type collide.
func key(v vector.Value) vector.Value {
	if v.Null {
		return vector.NullValue(v.Typ)
	}
	return v
}

// HashJoin matches left[lp] = right[rp] over the given candidate lists and
// returns the aligned position pairs. NULLs never match. The smaller side
// is used as the build side.
func HashJoin(left, right *vector.Vector, lc, rc bat.Candidates) (lpos, rpos []int) {
	if lc == nil {
		lc = bat.All(left.Len())
	}
	if rc == nil {
		rc = bat.All(right.Len())
	}
	// Build on the smaller input, probe with the larger.
	if len(lc) <= len(rc) {
		ht := buildHash(left, lc)
		for _, rp := range rc {
			if right.IsNull(rp) {
				continue
			}
			for _, lp := range ht[key(right.Get(rp))] {
				lpos = append(lpos, lp)
				rpos = append(rpos, rp)
			}
		}
		return lpos, rpos
	}
	ht := buildHash(right, rc)
	for _, lp := range lc {
		if left.IsNull(lp) {
			continue
		}
		for _, rp := range ht[key(left.Get(lp))] {
			lpos = append(lpos, lp)
			rpos = append(rpos, rp)
		}
	}
	return lpos, rpos
}

func buildHash(v *vector.Vector, cands bat.Candidates) map[vector.Value][]int {
	ht := make(map[vector.Value][]int, len(cands))
	for _, p := range cands {
		if v.IsNull(p) {
			continue
		}
		k := key(v.Get(p))
		ht[k] = append(ht[k], p)
	}
	return ht
}

// Group assigns a dense group id to every candidate based on the composite
// key formed by the key columns. It returns the group id per candidate
// (aligned with cands), the number of groups, and one representative
// position per group. Multi-column grouping refines iteratively, as
// MonetDB's group.subgroup does. NULL is a regular group key.
func Group(keys []*vector.Vector, cands bat.Candidates) (gids []int, ngroups int, reps []int) {
	if len(keys) == 0 {
		return nil, 0, nil
	}
	if cands == nil {
		cands = bat.All(keys[0].Len())
	}
	gids = make([]int, len(cands))
	type refineKey struct {
		g int
		v vector.Value
	}
	// First column.
	seen := make(map[vector.Value]int)
	for i, p := range cands {
		k := key(keys[0].Get(p))
		g, ok := seen[k]
		if !ok {
			g = len(seen)
			seen[k] = g
			reps = append(reps, p)
		}
		gids[i] = g
	}
	ngroups = len(seen)
	// Refinement columns.
	for _, col := range keys[1:] {
		sub := make(map[refineKey]int)
		reps = reps[:0]
		for i, p := range cands {
			k := refineKey{gids[i], key(col.Get(p))}
			g, ok := sub[k]
			if !ok {
				g = len(sub)
				sub[k] = g
				reps = append(reps, p)
			}
			gids[i] = g
		}
		ngroups = len(sub)
	}
	return gids, ngroups, reps
}

// AggKind enumerates the aggregate functions.
type AggKind uint8

// Aggregate functions.
const (
	AggCount         AggKind = iota // COUNT(col): non-NULL inputs
	AggCountAll                     // COUNT(*): all inputs
	AggCountDistinct                // COUNT(DISTINCT col)
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String returns the SQL name of the aggregate.
func (k AggKind) String() string {
	switch k {
	case AggCount, AggCountAll, AggCountDistinct:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	default:
		return "?"
	}
}

// ResultType returns the output type of the aggregate applied to input
// type in.
func (k AggKind) ResultType(in vector.Type) vector.Type {
	switch k {
	case AggCount, AggCountAll, AggCountDistinct:
		return vector.Int64
	case AggAvg:
		return vector.Float64
	case AggSum:
		if in == vector.Float64 {
			return vector.Float64
		}
		return vector.Int64
	default:
		return in
	}
}

// Aggregate computes the aggregate over v, grouped by gids (aligned with
// cands). ngroups may be 0 with nil gids for a scalar (ungrouped)
// aggregate, which yields a single-row result. SUM/MIN/MAX/AVG of an empty
// or all-NULL group is NULL; COUNT is 0.
func Aggregate(kind AggKind, v *vector.Vector, cands bat.Candidates, gids []int, ngroups int) *vector.Vector {
	scalar := gids == nil
	if scalar {
		ngroups = 1
	}
	if cands == nil && v != nil {
		cands = bat.All(v.Len())
	}
	gid := func(i int) int {
		if scalar {
			return 0
		}
		return gids[i]
	}

	switch kind {
	case AggCountAll:
		counts := make([]int64, ngroups)
		for i := range cands {
			counts[gid(i)]++
		}
		return vector.FromInts(counts)
	case AggCount:
		counts := make([]int64, ngroups)
		for i, p := range cands {
			if !v.IsNull(p) {
				counts[gid(i)]++
			}
		}
		return vector.FromInts(counts)
	case AggCountDistinct:
		sets := make([]map[vector.Value]struct{}, ngroups)
		for i, p := range cands {
			if v.IsNull(p) {
				continue
			}
			g := gid(i)
			if sets[g] == nil {
				sets[g] = map[vector.Value]struct{}{}
			}
			sets[g][key(v.Get(p))] = struct{}{}
		}
		counts := make([]int64, ngroups)
		for g, set := range sets {
			counts[g] = int64(len(set))
		}
		return vector.FromInts(counts)
	case AggSum:
		return aggSum(v, cands, gid, ngroups)
	case AggAvg:
		sums := make([]float64, ngroups)
		counts := make([]int64, ngroups)
		for i, p := range cands {
			if v.IsNull(p) {
				continue
			}
			g := gid(i)
			sums[g] += v.Get(p).AsFloat()
			counts[g]++
		}
		out := vector.NewWithCap(vector.Float64, ngroups)
		for g := 0; g < ngroups; g++ {
			if counts[g] == 0 {
				out.AppendNull()
			} else {
				out.AppendFloat(sums[g] / float64(counts[g]))
			}
		}
		return out
	case AggMin, AggMax:
		best := make([]vector.Value, ngroups)
		has := make([]bool, ngroups)
		for i, p := range cands {
			if v.IsNull(p) {
				continue
			}
			g := gid(i)
			x := v.Get(p)
			if !has[g] {
				best[g], has[g] = x, true
				continue
			}
			c := vector.Compare(x, best[g])
			if (kind == AggMin && c < 0) || (kind == AggMax && c > 0) {
				best[g] = x
			}
		}
		out := vector.NewWithCap(v.Type(), ngroups)
		for g := 0; g < ngroups; g++ {
			if !has[g] {
				out.AppendNull()
			} else {
				out.AppendValue(best[g])
			}
		}
		return out
	default:
		return vector.New(vector.Unknown)
	}
}

func aggSum(v *vector.Vector, cands bat.Candidates, gid func(int) int, ngroups int) *vector.Vector {
	if v.Type() == vector.Float64 {
		sums := make([]float64, ngroups)
		has := make([]bool, ngroups)
		fs := v.Floats()
		for i, p := range cands {
			if v.IsNull(p) {
				continue
			}
			g := gid(i)
			sums[g] += fs[p]
			has[g] = true
		}
		out := vector.NewWithCap(vector.Float64, ngroups)
		for g := 0; g < ngroups; g++ {
			if !has[g] {
				out.AppendNull()
			} else {
				out.AppendFloat(sums[g])
			}
		}
		return out
	}
	sums := make([]int64, ngroups)
	has := make([]bool, ngroups)
	for i, p := range cands {
		if v.IsNull(p) {
			continue
		}
		g := gid(i)
		sums[g] += v.Get(p).AsInt()
		has[g] = true
	}
	out := vector.NewWithCap(vector.Int64, ngroups)
	for g := 0; g < ngroups; g++ {
		if !has[g] {
			out.AppendNull()
		} else {
			out.AppendInt(sums[g])
		}
	}
	return out
}

// SortOrder returns the candidates reordered by the sort keys. desc[i]
// flips the direction of key i. The sort is stable; NULLs order first
// ascending (and therefore last descending).
func SortOrder(keys []*vector.Vector, desc []bool, cands bat.Candidates) bat.Candidates {
	if len(keys) == 0 {
		return cands
	}
	if cands == nil {
		cands = bat.All(keys[0].Len())
	}
	out := append(bat.Candidates(nil), cands...)
	sort.SliceStable(out, func(i, j int) bool {
		for k, col := range keys {
			c := vector.Compare(col.Get(out[i]), col.Get(out[j]))
			if c == 0 {
				continue
			}
			if desc[k] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return out
}

// TopN returns the first n candidates of the sort order (ORDER BY … LIMIT n).
func TopN(keys []*vector.Vector, desc []bool, cands bat.Candidates, n int) bat.Candidates {
	ordered := SortOrder(keys, desc, cands)
	if n < len(ordered) {
		ordered = ordered[:n]
	}
	return ordered
}

// Distinct returns one candidate per distinct composite key, preserving
// first-seen order.
func Distinct(keys []*vector.Vector, cands bat.Candidates) bat.Candidates {
	gids, _, _ := Group(keys, cands)
	if cands == nil && len(keys) > 0 {
		cands = bat.All(keys[0].Len())
	}
	seen := make(map[int]bool)
	out := make(bat.Candidates, 0)
	for i, p := range cands {
		if !seen[gids[i]] {
			seen[gids[i]] = true
			out = append(out, p)
		}
	}
	return out
}
