package algebra

import (
	"testing"
	"testing/quick"

	"repro/internal/bat"
	"repro/internal/vector"
)

func TestCmpOpHolds(t *testing.T) {
	cases := []struct {
		op   CmpOp
		cmp  int
		want bool
	}{
		{Eq, 0, true}, {Eq, 1, false},
		{Ne, 0, false}, {Ne, -1, true},
		{Lt, -1, true}, {Lt, 0, false},
		{Le, 0, true}, {Le, 1, false},
		{Gt, 1, true}, {Gt, 0, false},
		{Ge, 0, true}, {Ge, -1, false},
	}
	for _, c := range cases {
		if got := c.op.Holds(c.cmp); got != c.want {
			t.Errorf("%v.Holds(%d) = %v, want %v", c.op, c.cmp, got, c.want)
		}
	}
}

func TestThetaSelectInt(t *testing.T) {
	v := vector.FromInts([]int64{5, 1, 9, 3, 7})
	got := ThetaSelect(v, nil, Gt, vector.NewInt(4))
	want := bat.Candidates{0, 2, 4}
	assertCands(t, got, want)

	got = ThetaSelect(v, bat.Candidates{1, 2, 3}, Gt, vector.NewInt(4))
	assertCands(t, got, bat.Candidates{2})
}

func TestThetaSelectFloat(t *testing.T) {
	v := vector.FromFloats([]float64{1.5, 2.5, 3.5})
	got := ThetaSelect(v, nil, Le, vector.NewFloat(2.5))
	assertCands(t, got, bat.Candidates{0, 1})
}

func TestThetaSelectString(t *testing.T) {
	v := vector.FromStrings([]string{"b", "a", "c"})
	got := ThetaSelect(v, nil, Eq, vector.NewString("a"))
	assertCands(t, got, bat.Candidates{1})
}

func TestThetaSelectNulls(t *testing.T) {
	v := vector.New(vector.Int64)
	v.AppendInt(1)
	v.AppendNull()
	v.AppendInt(3)
	got := ThetaSelect(v, nil, Ge, vector.NewInt(0))
	assertCands(t, got, bat.Candidates{0, 2})
	// Comparing against NULL yields nothing.
	got = ThetaSelect(v, nil, Eq, vector.NullValue(vector.Int64))
	assertCands(t, got, bat.Candidates{})
}

func TestRangeSelect(t *testing.T) {
	v := vector.FromInts([]int64{1, 2, 3, 4, 5})
	got := RangeSelect(v, nil, vector.NewInt(2), vector.NewInt(4), true, true)
	assertCands(t, got, bat.Candidates{1, 2, 3})
	got = RangeSelect(v, nil, vector.NewInt(2), vector.NewInt(4), false, false)
	assertCands(t, got, bat.Candidates{2})
	// Unbounded low side.
	got = RangeSelect(v, nil, vector.NullValue(vector.Int64), vector.NewInt(2), true, true)
	assertCands(t, got, bat.Candidates{0, 1})
}

func TestMaskSelect(t *testing.T) {
	mask := vector.FromBools([]bool{true, false, true})
	got := MaskSelect(mask, bat.Candidates{10, 20, 30})
	assertCands(t, got, bat.Candidates{10, 30})

	withNull := vector.New(vector.Bool)
	withNull.AppendBool(true)
	withNull.AppendNull()
	got = MaskSelect(withNull, bat.Candidates{4, 5})
	assertCands(t, got, bat.Candidates{4})
}

func TestHashJoin(t *testing.T) {
	l := vector.FromInts([]int64{1, 2, 3, 2})
	r := vector.FromInts([]int64{2, 4, 1})
	lp, rp := HashJoin(l, r, nil, nil)
	// Expect pairs {(0,2),(1,0),(3,0)} in some order.
	if len(lp) != 3 {
		t.Fatalf("join produced %d pairs, want 3", len(lp))
	}
	seen := map[[2]int]bool{}
	for i := range lp {
		seen[[2]int{lp[i], rp[i]}] = true
		if l.Get(lp[i]).I != r.Get(rp[i]).I {
			t.Errorf("pair (%d,%d) values differ", lp[i], rp[i])
		}
	}
	for _, want := range [][2]int{{0, 2}, {1, 0}, {3, 0}} {
		if !seen[want] {
			t.Errorf("missing pair %v", want)
		}
	}
}

func TestHashJoinNullsNeverMatch(t *testing.T) {
	l := vector.New(vector.Int64)
	l.AppendNull()
	r := vector.New(vector.Int64)
	r.AppendNull()
	lp, _ := HashJoin(l, r, nil, nil)
	if len(lp) != 0 {
		t.Errorf("NULLs matched: %v", lp)
	}
}

func TestHashJoinWithCands(t *testing.T) {
	l := vector.FromInts([]int64{1, 2, 3})
	r := vector.FromInts([]int64{3, 2, 1})
	lp, rp := HashJoin(l, r, bat.Candidates{0}, nil)
	if len(lp) != 1 || lp[0] != 0 || rp[0] != 2 {
		t.Errorf("join with cands: %v %v", lp, rp)
	}
}

func TestGroupSingle(t *testing.T) {
	v := vector.FromStrings([]string{"a", "b", "a", "c", "b"})
	gids, n, reps := Group([]*vector.Vector{v}, nil)
	if n != 3 {
		t.Fatalf("ngroups = %d", n)
	}
	if gids[0] != gids[2] || gids[1] != gids[4] || gids[0] == gids[1] {
		t.Errorf("gids = %v", gids)
	}
	if len(reps) != 3 {
		t.Errorf("reps = %v", reps)
	}
}

func TestGroupMulti(t *testing.T) {
	a := vector.FromInts([]int64{1, 1, 2, 2, 1})
	b := vector.FromStrings([]string{"x", "y", "x", "x", "x"})
	gids, n, _ := Group([]*vector.Vector{a, b}, nil)
	if n != 3 {
		t.Fatalf("ngroups = %d, want 3", n)
	}
	if gids[0] != gids[4] {
		t.Error("(1,x) rows should share a group")
	}
	if gids[2] != gids[3] {
		t.Error("(2,x) rows should share a group")
	}
	if gids[0] == gids[1] || gids[0] == gids[2] {
		t.Errorf("groups not distinct: %v", gids)
	}
}

func TestGroupNullIsAKey(t *testing.T) {
	v := vector.New(vector.Int64)
	v.AppendInt(1)
	v.AppendNull()
	v.AppendNull()
	gids, n, _ := Group([]*vector.Vector{v}, nil)
	if n != 2 {
		t.Fatalf("ngroups = %d, want 2", n)
	}
	if gids[1] != gids[2] {
		t.Error("NULLs should group together")
	}
}

func TestAggregates(t *testing.T) {
	v := vector.New(vector.Int64)
	for _, x := range []int64{1, 2, 3, 4} {
		v.AppendValue(vector.NewInt(x))
	}
	v.AppendNull() // 5th row NULL
	gids := []int{0, 0, 1, 1, 1}

	sum := Aggregate(AggSum, v, nil, gids, 2)
	if sum.Get(0).I != 3 || sum.Get(1).I != 7 {
		t.Errorf("sum = %v", sum)
	}
	cnt := Aggregate(AggCount, v, nil, gids, 2)
	if cnt.Get(0).I != 2 || cnt.Get(1).I != 2 {
		t.Errorf("count = %v", cnt)
	}
	cntAll := Aggregate(AggCountAll, v, nil, gids, 2)
	if cntAll.Get(1).I != 3 {
		t.Errorf("count(*) = %v", cntAll)
	}
	mn := Aggregate(AggMin, v, nil, gids, 2)
	if mn.Get(0).I != 1 || mn.Get(1).I != 3 {
		t.Errorf("min = %v", mn)
	}
	mx := Aggregate(AggMax, v, nil, gids, 2)
	if mx.Get(0).I != 2 || mx.Get(1).I != 4 {
		t.Errorf("max = %v", mx)
	}
	avg := Aggregate(AggAvg, v, nil, gids, 2)
	if avg.Get(0).F != 1.5 || avg.Get(1).F != 3.5 {
		t.Errorf("avg = %v", avg)
	}
}

func TestScalarAggregate(t *testing.T) {
	v := vector.FromFloats([]float64{1, 2, 3})
	sum := Aggregate(AggSum, v, nil, nil, 0)
	if sum.Len() != 1 || sum.Get(0).F != 6 {
		t.Errorf("scalar sum = %v", sum)
	}
	cnt := Aggregate(AggCountAll, v, nil, nil, 0)
	if cnt.Get(0).I != 3 {
		t.Errorf("scalar count = %v", cnt)
	}
}

func TestAggregateEmptyGroupIsNull(t *testing.T) {
	v := vector.New(vector.Int64)
	sum := Aggregate(AggSum, v, bat.Candidates{}, nil, 0)
	if !sum.Get(0).Null {
		t.Errorf("sum of empty should be NULL, got %v", sum.Get(0))
	}
	cnt := Aggregate(AggCountAll, v, bat.Candidates{}, nil, 0)
	if cnt.Get(0).I != 0 {
		t.Errorf("count of empty = %v", cnt.Get(0))
	}
}

func TestAggResultType(t *testing.T) {
	if AggSum.ResultType(vector.Int64) != vector.Int64 {
		t.Error("sum int type")
	}
	if AggSum.ResultType(vector.Float64) != vector.Float64 {
		t.Error("sum float type")
	}
	if AggAvg.ResultType(vector.Int64) != vector.Float64 {
		t.Error("avg type")
	}
	if AggCount.ResultType(vector.String) != vector.Int64 {
		t.Error("count type")
	}
	if AggMin.ResultType(vector.String) != vector.String {
		t.Error("min type")
	}
}

func TestSortOrder(t *testing.T) {
	v := vector.FromInts([]int64{3, 1, 2})
	got := SortOrder([]*vector.Vector{v}, []bool{false}, nil)
	assertCands(t, got, bat.Candidates{1, 2, 0})
	got = SortOrder([]*vector.Vector{v}, []bool{true}, nil)
	assertCands(t, got, bat.Candidates{0, 2, 1})
}

func TestSortOrderMultiKeyStable(t *testing.T) {
	a := vector.FromInts([]int64{1, 1, 0, 0})
	b := vector.FromStrings([]string{"d", "c", "b", "a"})
	got := SortOrder([]*vector.Vector{a, b}, []bool{false, false}, nil)
	assertCands(t, got, bat.Candidates{3, 2, 1, 0})
}

func TestSortNullsFirst(t *testing.T) {
	v := vector.New(vector.Int64)
	v.AppendInt(5)
	v.AppendNull()
	v.AppendInt(1)
	got := SortOrder([]*vector.Vector{v}, []bool{false}, nil)
	assertCands(t, got, bat.Candidates{1, 2, 0})
}

func TestTopN(t *testing.T) {
	v := vector.FromInts([]int64{5, 3, 9, 1})
	got := TopN([]*vector.Vector{v}, []bool{false}, nil, 2)
	assertCands(t, got, bat.Candidates{3, 1})
	got = TopN([]*vector.Vector{v}, []bool{false}, nil, 10)
	if len(got) != 4 {
		t.Errorf("TopN over-limit = %v", got)
	}
}

func TestDistinct(t *testing.T) {
	v := vector.FromStrings([]string{"a", "b", "a", "b", "c"})
	got := Distinct([]*vector.Vector{v}, nil)
	assertCands(t, got, bat.Candidates{0, 1, 4})
}

func assertCands(t *testing.T, got, want bat.Candidates) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("candidates = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidates = %v, want %v", got, want)
		}
	}
}

// Property: ThetaSelect(Lt) ∪ ThetaSelect(Ge) partitions the non-NULL input.
func TestPropThetaPartition(t *testing.T) {
	f := func(vals []int64, pivot int64) bool {
		v := vector.FromInts(vals)
		lt := ThetaSelect(v, nil, Lt, vector.NewInt(pivot))
		ge := ThetaSelect(v, nil, Ge, vector.NewInt(pivot))
		if len(lt)+len(ge) != len(vals) {
			return false
		}
		union := bat.Union(lt, ge)
		return len(union) == len(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every hash-join output pair has equal key values, and the pair
// count matches the nested-loop count.
func TestPropHashJoinMatchesNestedLoop(t *testing.T) {
	f := func(lRaw, rRaw []uint8) bool {
		l := vector.New(vector.Int64)
		for _, x := range lRaw {
			l.AppendInt(int64(x % 8))
		}
		r := vector.New(vector.Int64)
		for _, x := range rRaw {
			r.AppendInt(int64(x % 8))
		}
		lp, rp := HashJoin(l, r, nil, nil)
		for i := range lp {
			if l.Get(lp[i]).I != r.Get(rp[i]).I {
				return false
			}
		}
		want := 0
		for i := 0; i < l.Len(); i++ {
			for j := 0; j < r.Len(); j++ {
				if l.Get(i).I == r.Get(j).I {
					want++
				}
			}
		}
		return len(lp) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SUM over groups equals total sum.
func TestPropGroupedSumConserved(t *testing.T) {
	f := func(vals []int64, keysRaw []uint8) bool {
		n := len(vals)
		if len(keysRaw) < n {
			n = len(keysRaw)
		}
		v := vector.FromInts(vals[:n])
		k := vector.New(vector.Int64)
		for _, x := range keysRaw[:n] {
			k.AppendInt(int64(x % 5))
		}
		gids, ng, _ := Group([]*vector.Vector{k}, nil)
		sums := Aggregate(AggSum, v, nil, gids, ng)
		var total, want int64
		for g := 0; g < ng; g++ {
			if !sums.Get(g).Null {
				total += sums.Get(g).I
			}
		}
		for _, x := range vals[:n] {
			want += x
		}
		return total == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SortOrder output is a permutation and is ordered.
func TestPropSortIsOrderedPermutation(t *testing.T) {
	f := func(vals []int64) bool {
		v := vector.FromInts(vals)
		got := SortOrder([]*vector.Vector{v}, []bool{false}, nil)
		if len(got) != len(vals) {
			return false
		}
		seen := make(map[int]bool, len(got))
		for _, p := range got {
			if seen[p] {
				return false
			}
			seen[p] = true
		}
		for i := 1; i < len(got); i++ {
			if v.Get(got[i-1]).I > v.Get(got[i]).I {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
