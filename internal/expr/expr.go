// Package expr provides typed expression trees and their vectorized
// evaluation over columns. The planner resolves SQL expressions into these
// nodes; the executor evaluates them column-at-a-time, with SQL's
// three-valued NULL logic.
package expr

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/bat"
	"repro/internal/vector"
)

// Expr is a resolved, typed expression.
type Expr interface {
	// Type returns the result type of the expression.
	Type() vector.Type
	// String renders the expression for plan display.
	String() string
}

// ColRef references an input column by position.
type ColRef struct {
	Index int
	Name  string
	Typ   vector.Type
}

// Type implements Expr.
func (c *ColRef) Type() vector.Type { return c.Typ }

// String implements Expr.
func (c *ColRef) String() string { return c.Name }

// Const is a literal value.
type Const struct {
	Val vector.Value
}

// Type implements Expr.
func (c *Const) Type() vector.Type { return c.Val.Typ }

// String implements Expr.
func (c *Const) String() string { return c.Val.String() }

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators.
const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Mod
	CmpEq
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
	And
	Or
)

// String returns the SQL spelling of the operator.
func (o BinOp) String() string {
	switch o {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	case Mod:
		return "%"
	case CmpEq:
		return "="
	case CmpNe:
		return "<>"
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	case And:
		return "AND"
	case Or:
		return "OR"
	default:
		return "?"
	}
}

// IsComparison reports whether o is one of the six comparison operators.
func (o BinOp) IsComparison() bool { return o >= CmpEq && o <= CmpGe }

// CmpOp translates a comparison BinOp into the algebra operator.
func (o BinOp) CmpOp() algebra.CmpOp {
	switch o {
	case CmpEq:
		return algebra.Eq
	case CmpNe:
		return algebra.Ne
	case CmpLt:
		return algebra.Lt
	case CmpLe:
		return algebra.Le
	case CmpGt:
		return algebra.Gt
	default:
		return algebra.Ge
	}
}

// Binary applies a binary operator.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// Type implements Expr.
func (b *Binary) Type() vector.Type {
	switch {
	case b.Op.IsComparison(), b.Op == And, b.Op == Or:
		return vector.Bool
	case b.Op == Div:
		return vector.Float64
	case b.Op == Mod:
		return vector.Int64
	case b.L.Type() == vector.Float64 || b.R.Type() == vector.Float64:
		return vector.Float64
	default:
		return vector.Int64
	}
}

// String implements Expr.
func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Neg negates a numeric expression.
type Neg struct{ E Expr }

// Type implements Expr.
func (n *Neg) Type() vector.Type { return n.E.Type() }

// String implements Expr.
func (n *Neg) String() string { return fmt.Sprintf("(-%s)", n.E) }

// Not inverts a boolean expression.
type Not struct{ E Expr }

// Type implements Expr.
func (n *Not) Type() vector.Type { return vector.Bool }

// String implements Expr.
func (n *Not) String() string { return fmt.Sprintf("(NOT %s)", n.E) }

// IsNull tests for NULL; with Negate it is IS NOT NULL.
type IsNull struct {
	E      Expr
	Negate bool
}

// Type implements Expr.
func (n *IsNull) Type() vector.Type { return vector.Bool }

// String implements Expr.
func (n *IsNull) String() string {
	if n.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", n.E)
	}
	return fmt.Sprintf("(%s IS NULL)", n.E)
}

// Eval evaluates e over the input columns, restricted to the candidate
// positions (nil means all rows). The result is aligned with cands: its
// i-th element is e applied to row cands[i]. With nil cands, column
// references may alias the inputs — callers must treat results read-only.
func Eval(e Expr, cols []*vector.Vector, cands bat.Candidates) (*vector.Vector, error) {
	n := 0
	if len(cols) > 0 {
		n = cols[0].Len()
	}
	return eval(e, cols, cands, n)
}

func eval(e Expr, cols []*vector.Vector, cands bat.Candidates, n int) (*vector.Vector, error) {
	switch x := e.(type) {
	case *ColRef:
		if x.Index < 0 || x.Index >= len(cols) {
			return nil, fmt.Errorf("expr: column index %d out of range", x.Index)
		}
		if cands == nil {
			// Identity candidates: no materialization.
			return cols[x.Index], nil
		}
		return cols[x.Index].Take(cands), nil
	case *Const:
		width := n
		if cands != nil {
			width = len(cands)
		}
		return vector.Const(x.Val, width), nil
	case *Binary:
		l, err := eval(x.L, cols, cands, n)
		if err != nil {
			return nil, err
		}
		r, err := eval(x.R, cols, cands, n)
		if err != nil {
			return nil, err
		}
		return evalBinary(x.Op, l, r)
	case *Neg:
		v, err := eval(x.E, cols, cands, n)
		if err != nil {
			return nil, err
		}
		return evalNeg(v)
	case *Not:
		v, err := eval(x.E, cols, cands, n)
		if err != nil {
			return nil, err
		}
		out := vector.NewWithCap(vector.Bool, v.Len())
		for i := 0; i < v.Len(); i++ {
			if v.IsNull(i) {
				out.AppendNull()
			} else {
				out.AppendBool(!v.Get(i).B)
			}
		}
		return out, nil
	case *IsNull:
		v, err := eval(x.E, cols, cands, n)
		if err != nil {
			return nil, err
		}
		out := vector.NewWithCap(vector.Bool, v.Len())
		for i := 0; i < v.Len(); i++ {
			out.AppendBool(v.IsNull(i) != x.Negate)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("expr: cannot evaluate %T", e)
	}
}

func evalNeg(v *vector.Vector) (*vector.Vector, error) {
	out := vector.NewWithCap(v.Type(), v.Len())
	switch v.Type() {
	case vector.Int64:
		for i, x := range v.Ints() {
			if v.IsNull(i) {
				out.AppendNull()
			} else {
				out.AppendInt(-x)
			}
		}
	case vector.Float64:
		for i, x := range v.Floats() {
			if v.IsNull(i) {
				out.AppendNull()
			} else {
				out.AppendFloat(-x)
			}
		}
	default:
		return nil, fmt.Errorf("expr: cannot negate %s", v.Type())
	}
	return out, nil
}

func evalBinary(op BinOp, l, r *vector.Vector) (*vector.Vector, error) {
	switch {
	case op == And, op == Or:
		return evalLogic(op, l, r)
	case op.IsComparison():
		return evalCompare(op, l, r)
	default:
		return evalArith(op, l, r)
	}
}

// evalLogic implements Kleene three-valued AND/OR.
func evalLogic(op BinOp, l, r *vector.Vector) (*vector.Vector, error) {
	if l.Type() != vector.Bool || r.Type() != vector.Bool {
		return nil, fmt.Errorf("expr: %s needs boolean operands", op)
	}
	out := vector.NewWithCap(vector.Bool, l.Len())
	lb, rb := l.Bools(), r.Bools()
	for i := range lb {
		ln, rn := l.IsNull(i), r.IsNull(i)
		if op == And {
			switch {
			case !ln && !lb[i], !rn && !rb[i]:
				out.AppendBool(false) // false AND anything = false
			case ln || rn:
				out.AppendNull()
			default:
				out.AppendBool(true)
			}
			continue
		}
		switch {
		case !ln && lb[i], !rn && rb[i]:
			out.AppendBool(true) // true OR anything = true
		case ln || rn:
			out.AppendNull()
		default:
			out.AppendBool(false)
		}
	}
	return out, nil
}

func evalCompare(op BinOp, l, r *vector.Vector) (*vector.Vector, error) {
	cmp := op.CmpOp()
	out := vector.NewWithCap(vector.Bool, l.Len())
	// Fast paths for aligned numeric columns.
	switch {
	case (l.Type() == vector.Int64 || l.Type() == vector.Timestamp) && l.Type() == r.Type() && !l.HasNulls() && !r.HasNulls():
		li, ri := l.Ints(), r.Ints()
		for i := range li {
			var c int
			switch {
			case li[i] < ri[i]:
				c = -1
			case li[i] > ri[i]:
				c = 1
			}
			out.AppendBool(cmp.Holds(c))
		}
		return out, nil
	case l.Type() == vector.Float64 && r.Type() == vector.Float64 && !l.HasNulls() && !r.HasNulls():
		lf, rf := l.Floats(), r.Floats()
		for i := range lf {
			var c int
			switch {
			case lf[i] < rf[i]:
				c = -1
			case lf[i] > rf[i]:
				c = 1
			}
			out.AppendBool(cmp.Holds(c))
		}
		return out, nil
	}
	mixedNumeric := l.Type() != r.Type() && l.Type().Numeric() && r.Type().Numeric()
	for i := 0; i < l.Len(); i++ {
		if l.IsNull(i) || r.IsNull(i) {
			out.AppendNull()
			continue
		}
		var c int
		if mixedNumeric {
			lf, rf := l.Get(i).AsFloat(), r.Get(i).AsFloat()
			switch {
			case lf < rf:
				c = -1
			case lf > rf:
				c = 1
			}
		} else {
			c = vector.Compare(l.Get(i), r.Get(i))
		}
		out.AppendBool(cmp.Holds(c))
	}
	return out, nil
}

func evalArith(op BinOp, l, r *vector.Vector) (*vector.Vector, error) {
	if !l.Type().Numeric() || !r.Type().Numeric() {
		if op == Add && l.Type() == vector.String && r.Type() == vector.String {
			out := vector.NewWithCap(vector.String, l.Len())
			for i := 0; i < l.Len(); i++ {
				if l.IsNull(i) || r.IsNull(i) {
					out.AppendNull()
				} else {
					out.AppendString(l.Get(i).S + r.Get(i).S)
				}
			}
			return out, nil
		}
		return nil, fmt.Errorf("expr: %s needs numeric operands, got %s and %s", op, l.Type(), r.Type())
	}
	floatOut := op == Div || l.Type() == vector.Float64 || r.Type() == vector.Float64
	if op == Mod {
		out := vector.NewWithCap(vector.Int64, l.Len())
		for i := 0; i < l.Len(); i++ {
			if l.IsNull(i) || r.IsNull(i) || r.Get(i).AsInt() == 0 {
				out.AppendNull()
				continue
			}
			out.AppendInt(l.Get(i).AsInt() % r.Get(i).AsInt())
		}
		return out, nil
	}
	if floatOut {
		out := vector.NewWithCap(vector.Float64, l.Len())
		for i := 0; i < l.Len(); i++ {
			if l.IsNull(i) || r.IsNull(i) {
				out.AppendNull()
				continue
			}
			a, b := l.Get(i).AsFloat(), r.Get(i).AsFloat()
			switch op {
			case Add:
				out.AppendFloat(a + b)
			case Sub:
				out.AppendFloat(a - b)
			case Mul:
				out.AppendFloat(a * b)
			case Div:
				if b == 0 {
					out.AppendNull()
				} else {
					out.AppendFloat(a / b)
				}
			}
		}
		return out, nil
	}
	out := vector.NewWithCap(vector.Int64, l.Len())
	li, ri := l.Ints(), r.Ints()
	noNulls := !l.HasNulls() && !r.HasNulls()
	for i := 0; i < l.Len(); i++ {
		if !noNulls && (l.IsNull(i) || r.IsNull(i)) {
			out.AppendNull()
			continue
		}
		a, b := li[i], ri[i]
		switch op {
		case Add:
			out.AppendInt(a + b)
		case Sub:
			out.AppendInt(a - b)
		case Mul:
			out.AppendInt(a * b)
		}
	}
	return out, nil
}

// Fold performs constant folding: subtrees with only Const leaves are
// evaluated once at plan time.
func Fold(e Expr) Expr {
	switch x := e.(type) {
	case *Binary:
		l, r := Fold(x.L), Fold(x.R)
		lc, lok := l.(*Const)
		rc, rok := r.(*Const)
		if lok && rok {
			lv := vector.Const(lc.Val, 1)
			rv := vector.Const(rc.Val, 1)
			if res, err := evalBinary(x.Op, lv, rv); err == nil {
				return &Const{Val: res.Get(0)}
			}
		}
		return &Binary{Op: x.Op, L: l, R: r}
	case *Neg:
		inner := Fold(x.E)
		if c, ok := inner.(*Const); ok {
			if v, err := evalNeg(vector.Const(c.Val, 1)); err == nil {
				return &Const{Val: v.Get(0)}
			}
		}
		return &Neg{E: inner}
	case *Not:
		inner := Fold(x.E)
		if c, ok := inner.(*Const); ok && c.Val.Typ == vector.Bool {
			if c.Val.Null {
				return &Const{Val: vector.NullValue(vector.Bool)}
			}
			return &Const{Val: vector.NewBool(!c.Val.B)}
		}
		return &Not{E: inner}
	case *IsNull:
		inner := Fold(x.E)
		if c, ok := inner.(*Const); ok {
			return &Const{Val: vector.NewBool(c.Val.Null != x.Negate)}
		}
		return &IsNull{E: inner, Negate: x.Negate}
	default:
		return e
	}
}

// Columns collects the distinct column indexes referenced by e, in
// first-use order. The planner uses it for projection pruning.
func Columns(e Expr) []int {
	var out []int
	seen := map[int]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *ColRef:
			if !seen[x.Index] {
				seen[x.Index] = true
				out = append(out, x.Index)
			}
		case *Binary:
			walk(x.L)
			walk(x.R)
		case *Neg:
			walk(x.E)
		case *Not:
			walk(x.E)
		case *IsNull:
			walk(x.E)
		}
	}
	walk(e)
	return out
}

// Remap rewrites every ColRef index through the mapping (old index → new
// index). It returns a new tree; e is not modified.
func Remap(e Expr, mapping map[int]int) Expr {
	switch x := e.(type) {
	case *ColRef:
		idx, ok := mapping[x.Index]
		if !ok {
			idx = x.Index
		}
		return &ColRef{Index: idx, Name: x.Name, Typ: x.Typ}
	case *Binary:
		return &Binary{Op: x.Op, L: Remap(x.L, mapping), R: Remap(x.R, mapping)}
	case *Neg:
		return &Neg{E: Remap(x.E, mapping)}
	case *Not:
		return &Not{E: Remap(x.E, mapping)}
	case *IsNull:
		return &IsNull{E: Remap(x.E, mapping), Negate: x.Negate}
	default:
		return e
	}
}

// SplitConjuncts flattens a tree of ANDs into its conjunct list, for
// predicate pushdown.
func SplitConjuncts(e Expr) []Expr {
	if b, ok := e.(*Binary); ok && b.Op == And {
		return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// JoinConjuncts rebuilds a conjunction from its parts; nil for empty input.
func JoinConjuncts(parts []Expr) Expr {
	if len(parts) == 0 {
		return nil
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out = &Binary{Op: And, L: out, R: p}
	}
	return out
}

// EquiKeys extracts the first equi-join conjunct of on whose sides fall
// on opposite inputs of a join with lw left columns. It returns the key
// expressions — the right-side key remapped into the right child's frame
// — and the remaining conjuncts. lkey is nil when no equi conjunct
// exists. This is the key-extraction step shared by the executor's hash
// join and the partition analyzer's co-partitioning check.
func EquiKeys(on Expr, lw int) (lkey, rkey Expr, rest []Expr) {
	for _, c := range SplitConjuncts(on) {
		if lkey == nil {
			if b, ok := c.(*Binary); ok && b.Op == CmpEq {
				lSide := sideOf(b.L, lw)
				rSide := sideOf(b.R, lw)
				if lSide == 'L' && rSide == 'R' {
					lkey, rkey = b.L, shiftRight(b.R, lw)
					continue
				}
				if lSide == 'R' && rSide == 'L' {
					lkey, rkey = b.R, shiftRight(b.L, lw)
					continue
				}
			}
		}
		rest = append(rest, c)
	}
	return lkey, rkey, rest
}

// sideOf reports 'L' if every column of e is from the left input, 'R' if
// from the right, and 'M' for mixed or column-free expressions.
func sideOf(e Expr, lw int) byte {
	cols := Columns(e)
	if len(cols) == 0 {
		return 'M'
	}
	left, right := false, false
	for _, c := range cols {
		if c < lw {
			left = true
		} else {
			right = true
		}
	}
	switch {
	case left && !right:
		return 'L'
	case right && !left:
		return 'R'
	default:
		return 'M'
	}
}

// shiftRight remaps an expression over the concatenated join frame into
// the right child's frame.
func shiftRight(e Expr, lw int) Expr {
	mapping := map[int]int{}
	for _, c := range Columns(e) {
		mapping[c] = c - lw
	}
	return Remap(e, mapping)
}
