package expr

import (
	"testing"
	"testing/quick"

	"repro/internal/bat"
	"repro/internal/vector"
)

func col(i int, t vector.Type) *ColRef { return &ColRef{Index: i, Name: "c", Typ: t} }
func ci(v int64) *Const                { return &Const{Val: vector.NewInt(v)} }
func cf(v float64) *Const              { return &Const{Val: vector.NewFloat(v)} }
func cb(v bool) *Const                 { return &Const{Val: vector.NewBool(v)} }

func TestEvalColRef(t *testing.T) {
	cols := []*vector.Vector{vector.FromInts([]int64{1, 2, 3})}
	got, err := Eval(col(0, vector.Int64), cols, bat.Candidates{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got.Get(0).I != 3 || got.Get(1).I != 1 {
		t.Errorf("got %v", got)
	}
}

func TestEvalColRefOutOfRange(t *testing.T) {
	if _, err := Eval(col(3, vector.Int64), nil, bat.Candidates{}); err == nil {
		t.Error("expected error for out-of-range column")
	}
}

func TestEvalArithInt(t *testing.T) {
	cols := []*vector.Vector{vector.FromInts([]int64{10, 20})}
	e := &Binary{Op: Add, L: col(0, vector.Int64), R: ci(5)}
	got, _ := Eval(e, cols, nil)
	if got.Type() != vector.Int64 || got.Get(0).I != 15 || got.Get(1).I != 25 {
		t.Errorf("add: %v", got)
	}
	e = &Binary{Op: Mul, L: col(0, vector.Int64), R: ci(3)}
	got, _ = Eval(e, cols, nil)
	if got.Get(1).I != 60 {
		t.Errorf("mul: %v", got)
	}
	e = &Binary{Op: Sub, L: col(0, vector.Int64), R: ci(1)}
	got, _ = Eval(e, cols, nil)
	if got.Get(0).I != 9 {
		t.Errorf("sub: %v", got)
	}
}

func TestEvalDivAlwaysFloat(t *testing.T) {
	cols := []*vector.Vector{vector.FromInts([]int64{7})}
	e := &Binary{Op: Div, L: col(0, vector.Int64), R: ci(2)}
	got, _ := Eval(e, cols, nil)
	if got.Type() != vector.Float64 || got.Get(0).F != 3.5 {
		t.Errorf("div: %v", got)
	}
}

func TestEvalDivByZeroIsNull(t *testing.T) {
	cols := []*vector.Vector{vector.FromInts([]int64{7})}
	e := &Binary{Op: Div, L: col(0, vector.Int64), R: ci(0)}
	got, _ := Eval(e, cols, nil)
	if !got.Get(0).Null {
		t.Errorf("div by zero: %v", got.Get(0))
	}
	e = &Binary{Op: Mod, L: col(0, vector.Int64), R: ci(0)}
	got, _ = Eval(e, cols, nil)
	if !got.Get(0).Null {
		t.Errorf("mod by zero: %v", got.Get(0))
	}
}

func TestEvalMod(t *testing.T) {
	cols := []*vector.Vector{vector.FromInts([]int64{7, 9})}
	e := &Binary{Op: Mod, L: col(0, vector.Int64), R: ci(4)}
	got, _ := Eval(e, cols, nil)
	if got.Get(0).I != 3 || got.Get(1).I != 1 {
		t.Errorf("mod: %v", got)
	}
}

func TestEvalMixedTypesPromoteToFloat(t *testing.T) {
	cols := []*vector.Vector{vector.FromInts([]int64{3})}
	e := &Binary{Op: Add, L: col(0, vector.Int64), R: cf(0.5)}
	got, _ := Eval(e, cols, nil)
	if got.Type() != vector.Float64 || got.Get(0).F != 3.5 {
		t.Errorf("mixed add: %v", got)
	}
}

func TestEvalStringConcat(t *testing.T) {
	cols := []*vector.Vector{vector.FromStrings([]string{"foo"})}
	e := &Binary{Op: Add, L: col(0, vector.String), R: &Const{Val: vector.NewString("bar")}}
	got, err := Eval(e, cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Get(0).S != "foobar" {
		t.Errorf("concat: %v", got)
	}
}

func TestEvalCompare(t *testing.T) {
	cols := []*vector.Vector{vector.FromInts([]int64{1, 5, 9})}
	e := &Binary{Op: CmpGt, L: col(0, vector.Int64), R: ci(4)}
	got, _ := Eval(e, cols, nil)
	want := []bool{false, true, true}
	for i, w := range want {
		if got.Get(i).B != w {
			t.Errorf("cmp[%d] = %v, want %v", i, got.Get(i), w)
		}
	}
}

func TestEvalCompareMixedNumeric(t *testing.T) {
	cols := []*vector.Vector{vector.FromInts([]int64{3})}
	e := &Binary{Op: CmpLt, L: col(0, vector.Int64), R: cf(3.5)}
	got, _ := Eval(e, cols, nil)
	if !got.Get(0).B {
		t.Error("3 < 3.5 should hold across types")
	}
}

func TestEvalCompareNullIsNull(t *testing.T) {
	c := vector.New(vector.Int64)
	c.AppendNull()
	e := &Binary{Op: CmpEq, L: col(0, vector.Int64), R: ci(0)}
	got, _ := Eval(e, []*vector.Vector{c}, nil)
	if !got.Get(0).Null {
		t.Error("NULL = 0 should be NULL")
	}
}

func TestKleeneLogic(t *testing.T) {
	null := &Const{Val: vector.NullValue(vector.Bool)}
	cases := []struct {
		name string
		e    Expr
		want vector.Value
	}{
		{"false AND NULL", &Binary{Op: And, L: cb(false), R: null}, vector.NewBool(false)},
		{"NULL AND false", &Binary{Op: And, L: null, R: cb(false)}, vector.NewBool(false)},
		{"true AND NULL", &Binary{Op: And, L: cb(true), R: null}, vector.NullValue(vector.Bool)},
		{"true AND true", &Binary{Op: And, L: cb(true), R: cb(true)}, vector.NewBool(true)},
		{"true OR NULL", &Binary{Op: Or, L: cb(true), R: null}, vector.NewBool(true)},
		{"NULL OR true", &Binary{Op: Or, L: null, R: cb(true)}, vector.NewBool(true)},
		{"false OR NULL", &Binary{Op: Or, L: cb(false), R: null}, vector.NullValue(vector.Bool)},
		{"false OR false", &Binary{Op: Or, L: cb(false), R: cb(false)}, vector.NewBool(false)},
	}
	one := []*vector.Vector{vector.FromInts([]int64{0})}
	for _, c := range cases {
		got, err := Eval(c.e, one, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		v := got.Get(0)
		if v.Null != c.want.Null || (!v.Null && v.B != c.want.B) {
			t.Errorf("%s = %v, want %v", c.name, v, c.want)
		}
	}
}

func TestEvalNegAndNot(t *testing.T) {
	cols := []*vector.Vector{vector.FromInts([]int64{4}), vector.FromFloats([]float64{2.5})}
	got, _ := Eval(&Neg{E: col(0, vector.Int64)}, cols, nil)
	if got.Get(0).I != -4 {
		t.Errorf("neg int: %v", got)
	}
	got, _ = Eval(&Neg{E: col(1, vector.Float64)}, cols, nil)
	if got.Get(0).F != -2.5 {
		t.Errorf("neg float: %v", got)
	}
	got, _ = Eval(&Not{E: &Binary{Op: CmpGt, L: col(0, vector.Int64), R: ci(0)}}, cols, nil)
	if got.Get(0).B {
		t.Errorf("not: %v", got)
	}
}

func TestIsNull(t *testing.T) {
	c := vector.New(vector.Int64)
	c.AppendInt(1)
	c.AppendNull()
	cols := []*vector.Vector{c}
	got, _ := Eval(&IsNull{E: col(0, vector.Int64)}, cols, nil)
	if got.Get(0).B || !got.Get(1).B {
		t.Errorf("is null: %v", got)
	}
	got, _ = Eval(&IsNull{E: col(0, vector.Int64), Negate: true}, cols, nil)
	if !got.Get(0).B || got.Get(1).B {
		t.Errorf("is not null: %v", got)
	}
}

func TestFold(t *testing.T) {
	e := &Binary{Op: Add, L: ci(2), R: &Binary{Op: Mul, L: ci(3), R: ci(4)}}
	folded := Fold(e)
	c, ok := folded.(*Const)
	if !ok || c.Val.I != 14 {
		t.Errorf("Fold = %v", folded)
	}
	// Column refs survive.
	e2 := &Binary{Op: Add, L: col(0, vector.Int64), R: &Binary{Op: Add, L: ci(1), R: ci(2)}}
	folded2 := Fold(e2).(*Binary)
	if rc, ok := folded2.R.(*Const); !ok || rc.Val.I != 3 {
		t.Errorf("partial fold = %v", folded2)
	}
	// NOT folding.
	if f := Fold(&Not{E: cb(true)}); f.(*Const).Val.B {
		t.Error("NOT true should fold to false")
	}
	// IS NULL folding.
	if f := Fold(&IsNull{E: ci(1)}); f.(*Const).Val.B {
		t.Error("1 IS NULL should fold to false")
	}
}

func TestColumns(t *testing.T) {
	e := &Binary{Op: Add,
		L: &Binary{Op: Mul, L: col(2, vector.Int64), R: col(0, vector.Int64)},
		R: col(2, vector.Int64)}
	got := Columns(e)
	if len(got) != 2 || got[0] != 2 || got[1] != 0 {
		t.Errorf("Columns = %v", got)
	}
}

func TestRemap(t *testing.T) {
	e := &Binary{Op: CmpGt, L: col(5, vector.Int64), R: ci(0)}
	got := Remap(e, map[int]int{5: 1}).(*Binary)
	if got.L.(*ColRef).Index != 1 {
		t.Errorf("Remap = %v", got)
	}
	// Original untouched.
	if e.L.(*ColRef).Index != 5 {
		t.Error("Remap mutated the source tree")
	}
}

func TestSplitJoinConjuncts(t *testing.T) {
	a := &Binary{Op: CmpGt, L: col(0, vector.Int64), R: ci(1)}
	b := &Binary{Op: CmpLt, L: col(0, vector.Int64), R: ci(9)}
	c := &Binary{Op: CmpNe, L: col(1, vector.Int64), R: ci(5)}
	e := &Binary{Op: And, L: &Binary{Op: And, L: a, R: b}, R: c}
	parts := SplitConjuncts(e)
	if len(parts) != 3 {
		t.Fatalf("SplitConjuncts = %d parts", len(parts))
	}
	rejoined := JoinConjuncts(parts)
	if rejoined.String() != e.String() {
		t.Errorf("JoinConjuncts = %s, want %s", rejoined, e)
	}
	if JoinConjuncts(nil) != nil {
		t.Error("JoinConjuncts(nil) should be nil")
	}
}

func TestExprStrings(t *testing.T) {
	e := &Binary{Op: And,
		L: &Not{E: &IsNull{E: col(0, vector.Int64)}},
		R: &Binary{Op: CmpGe, L: &Neg{E: col(0, vector.Int64)}, R: ci(0)}}
	if e.String() == "" {
		t.Error("empty String()")
	}
}

// Property: folding never changes evaluation results.
func TestPropFoldPreservesSemantics(t *testing.T) {
	f := func(a, b int64, x int64) bool {
		cols := []*vector.Vector{vector.FromInts([]int64{x})}
		e := &Binary{Op: Add,
			L: &Binary{Op: Mul, L: ci(a), R: ci(b)},
			R: &Binary{Op: Sub, L: col(0, vector.Int64), R: ci(a)}}
		want, err1 := Eval(e, cols, nil)
		got, err2 := Eval(Fold(e), cols, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		return want.Get(0).I == got.Get(0).I
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: comparisons and their negations partition non-NULL rows.
func TestPropCompareNegation(t *testing.T) {
	f := func(vals []int64, pivot int64) bool {
		cols := []*vector.Vector{vector.FromInts(vals)}
		lt := &Binary{Op: CmpLt, L: col(0, vector.Int64), R: ci(pivot)}
		ge := &Binary{Op: CmpGe, L: col(0, vector.Int64), R: ci(pivot)}
		a, err1 := Eval(lt, cols, nil)
		b, err2 := Eval(ge, cols, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range vals {
			if a.Get(i).B == b.Get(i).B {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
