// Package ring provides a bounded single-producer/single-consumer ring
// buffer used on the execution hot paths (ingest-fanout -> shard basket,
// shard pipeline -> merge).  Push and Pop are lock-free: one atomic store
// each, no allocation.  The "single" in SPSC means at most one goroutine
// on each side at a time; callers that rotate producers or consumers must
// establish happens-before between them (e.g. via a mutex handoff).
package ring

import "sync/atomic"

// SPSC is a bounded power-of-two ring buffer.
type SPSC[T any] struct {
	buf  []T
	mask uint64
	_    [48]byte // keep head/tail off the buf header's cache line
	head atomic.Uint64
	_    [56]byte // head and tail on separate cache lines
	tail atomic.Uint64
}

// New returns a ring with capacity rounded up to a power of two (min 8).
func New[T any](capacity int) *SPSC[T] {
	n := uint64(8)
	for n < uint64(capacity) {
		n <<= 1
	}
	return &SPSC[T]{buf: make([]T, n), mask: n - 1}
}

// Cap returns the fixed capacity of the ring.
func (r *SPSC[T]) Cap() int { return len(r.buf) }

// Len returns the number of buffered items. It is a racy snapshot when
// called concurrently with Push/Pop, but never exceeds Cap.
func (r *SPSC[T]) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Push appends v; it reports false when the ring is full. Producer-side only.
func (r *SPSC[T]) Push(v T) bool {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1) // release: publishes the slot write
	return true
}

// Pop removes and returns the oldest item. Consumer-side only.
func (r *SPSC[T]) Pop() (T, bool) {
	var zero T
	h := r.head.Load()
	if h == r.tail.Load() {
		return zero, false
	}
	v := r.buf[h&r.mask]
	r.buf[h&r.mask] = zero // release references for GC
	r.head.Store(h + 1)    // release: frees the slot for the producer
	return v, true
}

// Peek returns the oldest item without removing it. Consumer-side only.
func (r *SPSC[T]) Peek() (T, bool) {
	var zero T
	h := r.head.Load()
	if h == r.tail.Load() {
		return zero, false
	}
	return r.buf[h&r.mask], true
}

// Do calls fn for each buffered item, oldest first, without consuming.
// Consumer-side only: the slots below the observed tail are stable because
// only the consumer advances head.
func (r *SPSC[T]) Do(fn func(T)) {
	t := r.tail.Load()
	for h := r.head.Load(); h < t; h++ {
		fn(r.buf[h&r.mask])
	}
}

// PopN discards the n oldest items (n must not exceed Len). Consumer-side only.
func (r *SPSC[T]) PopN(n int) {
	var zero T
	h := r.head.Load()
	for i := 0; i < n; i++ {
		r.buf[(h+uint64(i))&r.mask] = zero
	}
	r.head.Store(h + uint64(n))
}
