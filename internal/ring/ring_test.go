package ring

import (
	"sync"
	"testing"
)

func TestPushPopFIFO(t *testing.T) {
	r := New[int](4) // rounds up to 8
	if r.Cap() != 8 {
		t.Fatalf("cap = %d, want 8", r.Cap())
	}
	for i := 0; i < 8; i++ {
		if !r.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.Push(99) {
		t.Fatal("push succeeded on full ring")
	}
	if got := r.Len(); got != 8 {
		t.Fatalf("len = %d, want 8", got)
	}
	for i := 0; i < 8; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop succeeded on empty ring")
	}
}

func TestPeekAndDo(t *testing.T) {
	r := New[string](8)
	r.Push("a")
	r.Push("b")
	if v, ok := r.Peek(); !ok || v != "a" {
		t.Fatalf("peek = %q,%v", v, ok)
	}
	var seen []string
	r.Do(func(s string) { seen = append(seen, s) })
	if len(seen) != 2 || seen[0] != "a" || seen[1] != "b" {
		t.Fatalf("do visited %v", seen)
	}
	if r.Len() != 2 {
		t.Fatalf("do consumed items: len = %d", r.Len())
	}
	r.PopN(2)
	if r.Len() != 0 {
		t.Fatalf("popn left %d items", r.Len())
	}
}

func TestWrapAround(t *testing.T) {
	r := New[int](8)
	next := 0
	for round := 0; round < 100; round++ {
		for i := 0; i < 5; i++ {
			r.Push(next + i)
		}
		for i := 0; i < 5; i++ {
			v, ok := r.Pop()
			if !ok || v != next+i {
				t.Fatalf("round %d: pop = %d,%v want %d", round, v, ok, next+i)
			}
		}
		next += 5
	}
}

// TestConcurrentSPSC exercises the producer/consumer pair under the race
// detector to validate the atomic publication protocol.
func TestConcurrentSPSC(t *testing.T) {
	r := New[int](64)
	const total = 100_000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < total; {
			if r.Push(i) {
				i++
			}
		}
	}()
	errs := make(chan int, 1)
	go func() {
		defer wg.Done()
		want := 0
		for want < total {
			v, ok := r.Pop()
			if !ok {
				continue
			}
			if v != want {
				select {
				case errs <- v:
				default:
				}
				return
			}
			want++
		}
	}()
	wg.Wait()
	select {
	case v := <-errs:
		t.Fatalf("out-of-order pop: got %d", v)
	default:
	}
}
