// Package factory implements the DataCell's factories (§2.3): continuous
// queries cast as resumable units holding a compiled plan. A factory has
// input baskets and output baskets; when the scheduler fires it, it locks
// its baskets, runs the plan over the buffered tuples in bulk, appends the
// result to its outputs, removes the consumed input tuples, and suspends —
// exactly the loop of Algorithm 1 in the paper. Execution state (window
// buffers, shared-reader watermarks, statistics) persists between firings,
// giving the MonetDB co-routine semantics.
package factory

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/basket"
	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/vector"
	"repro/internal/window"
)

// InputMode selects the consumption discipline for one input basket.
type InputMode uint8

// Input modes.
const (
	// Owned: the factory is the only consumer; it removes the tuples its
	// basket expression references (separate-baskets strategy).
	Owned InputMode = iota
	// Shared: the basket is shared with other factories; this factory only
	// advances its watermark, and the basket compacts what everyone has
	// seen (shared-baskets strategy).
	Shared
)

// Sink receives a factory's result batches. Baskets are sinks; so are the
// SPSC tails that hand a partitioned query's shard emissions to its merge
// transition without a basket lock.
type Sink interface {
	Name() string
	AppendRelation(*storage.Relation) error
}

// Input binds one plan scan source to a basket.
type Input struct {
	Basket *basket.Basket
	Mode   InputMode
	// Bind is the scan source name in the plan this basket satisfies
	// (lower-case). It is usually the basket's own name, but the
	// separate-baskets strategy binds private replicas under the stream's
	// name.
	Bind string
	// ReaderID identifies this factory at a shared basket.
	ReaderID string
}

// Stats are cumulative factory counters.
type Stats struct {
	Firings   int64
	TuplesIn  int64
	TuplesOut int64
	// Late counts tuples the window runner dropped because they arrived
	// behind an already-emitted window boundary, plus streaming-join
	// probes that arrived behind their side's watermark (0 for unwindowed,
	// join-free factories).
	Late int64
	// JoinState is the number of rows the factory's streaming join
	// currently retains (a gauge, not a counter; 0 without a join).
	JoinState int64
	// JoinEvictions counts join-state rows expired behind the watermark.
	JoinEvictions int64
}

// Factory is a compiled continuous query; it implements
// scheduler.Transition.
type Factory struct {
	name    string
	plan    plan.Node
	catalog *catalog.Catalog
	clock   metrics.Clock

	inputs  []Input
	outputs []Sink

	// minTuples is the firing threshold (§2.4: "the system may explicitly
	// require a basket to have a minimum of n tuples").
	minTuples int

	// onResult, when set, receives every non-empty result batch along with
	// the max input timestamp it covers (for latency accounting). Called
	// outside all basket locks.
	onResult func(rel *storage.Relation, maxInputTS int64)

	// Window state (nil for unwindowed queries). runnerMu serializes the
	// scheduler-driven Append path against asynchronous FlushWindows
	// calls (the engine's window ticker), held across result delivery so
	// emitted windows reach the output baskets in window order and the
	// delivered frontier never runs ahead of the appended results.
	runner   *window.Runner
	runnerMu sync.Mutex
	// tagWindowEnd appends each emitted window's end boundary as an extra
	// column — shard pipelines of a partitioned windowed query mark their
	// partials so the merge can align pane grids across shards.
	tagWindowEnd bool
	// frontier is the delivered window frontier (atomic): every window
	// whose end is <= frontier has been appended to the output baskets.
	// Initialized to math.MinInt64.
	frontier int64

	// join is the persistent streaming join state of a join query (nil
	// otherwise). Join factories consume their whole pinned snapshot —
	// the state retains what future firings still need, so predicate
	// retention in the basket would only re-probe duplicates.
	join *exec.StreamJoin
	// fireAny relaxes Ready to "any input has tuples": a symmetric join
	// must fire when either stream side has arrivals, not when both do.
	fireAny bool

	// seen is the per-input arrival watermark (hseq+len observed at the
	// last firing) for Owned inputs. Tuples a predicate window retained
	// are below it and do not re-trigger the factory; they are re-examined
	// whenever new tuples arrive.
	seen []bat.OID

	// Latency is per-batch processing latency (emit time − newest input
	// timestamp); populated when the inputs carry a ts column.
	Latency *obs.Histogram

	mu    sync.Mutex
	stats Stats
}

// Option configures a Factory.
type Option func(*Factory)

// WithMinTuples sets the firing threshold (default 1).
func WithMinTuples(n int) Option {
	return func(f *Factory) {
		if n > 0 {
			f.minTuples = n
		}
	}
}

// WithOnResult registers a result callback.
func WithOnResult(fn func(*storage.Relation, int64)) Option {
	return func(f *Factory) { f.onResult = fn }
}

// SetResultHook chains fn onto the factory's result callback: fn runs
// after any previously installed callback, for every non-empty result
// batch, outside all basket locks. It must be called before the factory
// is scheduled (it is not synchronized with firings).
func (f *Factory) SetResultHook(fn func(rel *storage.Relation, maxInputTS int64)) {
	if fn == nil {
		return
	}
	prev := f.onResult
	if prev == nil {
		f.onResult = fn
		return
	}
	f.onResult = func(rel *storage.Relation, maxInputTS int64) {
		prev(rel, maxInputTS)
		fn(rel, maxInputTS)
	}
}

// WithWindow attaches a window runner; the factory then buffers input
// tuples into the runner and emits one result per completed window.
func WithWindow(r *window.Runner) Option {
	return func(f *Factory) { f.runner = r }
}

// WithWindowEndTag appends each emitted window's end timestamp as a
// trailing column of the result (shard pipelines of partitioned windowed
// queries, whose merge stage aligns windows by that boundary).
func WithWindowEndTag() Option {
	return func(f *Factory) { f.tagWindowEnd = true }
}

// WithStreamJoin attaches persistent streaming join state: the plan's
// join node probes it incrementally instead of re-running a batch hash
// join per firing. Symmetric (stream-stream) state also switches the
// firing rule to "any input has tuples".
func WithStreamJoin(sj *exec.StreamJoin) Option {
	return func(f *Factory) {
		f.join = sj
		if sj != nil && sj.Symmetric() {
			f.fireAny = true
		}
	}
}

// WithClock overrides the clock (tests).
func WithClock(c metrics.Clock) Option {
	return func(f *Factory) { f.clock = c }
}

// WithLatency shares a latency histogram across factories — the shard
// pipelines of one partitioned query observe into a single histogram so
// the query's latency profile stays one distribution.
func WithLatency(h *obs.Histogram) Option {
	return func(f *Factory) {
		if h != nil {
			f.Latency = h
		}
	}
}

// New builds a factory around a compiled plan.
func New(name string, p plan.Node, cat *catalog.Catalog, inputs []Input, outputs []Sink, opts ...Option) (*Factory, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("factory %s: needs at least one input basket", name)
	}
	f := &Factory{
		name:      name,
		plan:      p,
		catalog:   cat,
		clock:     metrics.WallClock{},
		inputs:    inputs,
		outputs:   outputs,
		minTuples: 1,
		Latency:   obs.NewHistogram(),
		frontier:  math.MinInt64,
	}
	f.seen = make([]bat.OID, len(f.inputs))
	for i := range f.inputs {
		in := &f.inputs[i]
		in.Bind = strings.ToLower(in.Bind)
		if in.Bind == "" {
			in.Bind = strings.ToLower(in.Basket.Name())
		}
		if in.Mode == Shared {
			if in.ReaderID == "" {
				in.ReaderID = name
			}
			in.Basket.RegisterReader(in.ReaderID)
		}
		// Existing backlog counts as unseen.
		hseq, _ := in.Basket.Bounds()
		f.seen[i] = hseq
	}
	for _, o := range opts {
		o(f)
	}
	return f, nil
}

// Name implements scheduler.Transition.
func (f *Factory) Name() string { return f.name }

// Plan exposes the compiled plan (diagnostics).
func (f *Factory) Plan() plan.Node { return f.plan }

// InputBaskets returns the factory's input baskets in input order — the
// places whose appends make this transition fireable. The engine
// subscribes the factory's scheduler handle to each.
func (f *Factory) InputBaskets() []*basket.Basket {
	out := make([]*basket.Basket, len(f.inputs))
	for i, in := range f.inputs {
		out[i] = in.Basket
	}
	return out
}

// Stats returns a copy of the cumulative counters.
func (f *Factory) Stats() Stats {
	f.mu.Lock()
	st := f.stats
	f.mu.Unlock()
	if f.runner != nil {
		f.runnerMu.Lock()
		st.Late = f.runner.Late()
		f.runnerMu.Unlock()
	}
	if f.join != nil {
		js := f.join.Stats()
		st.JoinState = js.StateRows
		st.JoinEvictions = js.Evictions
		st.Late += js.Late
	}
	return st
}

// WindowWatermark returns the runner's event-time watermark; ok is false
// for unwindowed factories and before any timestamp was observed.
func (f *Factory) WindowWatermark() (int64, bool) {
	if f.runner == nil {
		return 0, false
	}
	f.runnerMu.Lock()
	defer f.runnerMu.Unlock()
	return f.runner.Watermark()
}

// WindowFrontier reports how far this factory's emitted windows have
// progressed: every window ending at or before the returned boundary has
// been delivered to the output baskets. For a runner that has not seen a
// tuple yet the live watermark stands in (there is nothing pending to
// deliver), so an empty shard never stalls a windowed merge.
func (f *Factory) WindowFrontier() int64 {
	fr := atomic.LoadInt64(&f.frontier)
	if f.runner == nil {
		return fr
	}
	f.runnerMu.Lock()
	started := f.runner.Started()
	wm, ok := f.runner.Watermark()
	f.runnerMu.Unlock()
	if !started && ok && wm > fr {
		return wm
	}
	return fr
}

// Close unregisters shared readers so retained tuples are freed.
func (f *Factory) Close() {
	for _, in := range f.inputs {
		if in.Mode == Shared {
			in.Basket.UnregisterReader(in.ReaderID)
		}
	}
}

// Ready implements scheduler.Transition: all inputs must hold at least
// minTuples unseen tuples (§2.4: a transition with multiple inputs needs
// tokens in every input place). Symmetric-join factories instead fire
// when ANY input has tuples — their other side's matches live in the
// join state, not in the basket.
func (f *Factory) Ready() bool {
	for i := range f.inputs {
		n := f.available(i)
		if f.fireAny {
			if n >= f.minTuples {
				return true
			}
			continue
		}
		if n < f.minTuples {
			return false
		}
	}
	return !f.fireAny
}

func (f *Factory) available(i int) int {
	in := f.inputs[i]
	if in.Mode == Shared {
		in.Basket.Lock()
		off, n := in.Basket.UnseenLocked(in.ReaderID)
		in.Basket.Unlock()
		return n - off
	}
	hseq, n := in.Basket.Bounds()
	f.mu.Lock()
	seen := f.seen[i]
	f.mu.Unlock()
	return int(hseq + bat.OID(n) - seen)
}

// pinned is a consistent view of one input basket captured under its lock.
type pinned struct {
	in     Input
	view   bat.View // unseen window of the snapshot (chunk refs, no copy)
	offset int      // shared mode: first unseen row of the snapshot
	n      int      // snapshot length
	hseq   bat.OID
}

// Fire implements scheduler.Transition: one bulk processing step.
func (f *Factory) Fire() error {
	// The group clock must be read BEFORE the input is pinned: every
	// tuple below this reading was routed (and appended to our input)
	// before it was taken, so it is covered by the snapshot — a reading
	// taken later could have been raised past tuples still outside it.
	var groupMax int64
	var hasGroup bool
	if f.runner != nil {
		groupMax, hasGroup = f.runner.GroupMax()
	}
	// The same pre-pin discipline for streaming-join clocks: a reading
	// taken now only covers tuples that are either already processed or
	// about to be pinned below.
	if f.join != nil {
		f.join.ObserveClocks()
	}
	// Lock all inputs in name order to avoid deadlock with factories that
	// share baskets.
	locked := append([]Input(nil), f.inputs...)
	sort.Slice(locked, func(i, j int) bool {
		return locked[i].Basket.Name() < locked[j].Basket.Name()
	})
	for _, in := range locked {
		in.Basket.Lock()
	}
	unlock := func() {
		for i := len(locked) - 1; i >= 0; i-- {
			locked[i].Basket.Unlock()
		}
	}

	// Pin a consistent snapshot of every input.
	pins := make([]pinned, len(f.inputs))
	total := 0
	for i, in := range f.inputs {
		view, n := in.Basket.LockedSnapshot()
		p := pinned{in: in, view: view, n: n, hseq: in.Basket.LockedHseq()}
		if in.Mode == Shared {
			p.offset, _ = in.Basket.UnseenLocked(in.ReaderID)
			p.view = view.Slice(p.offset, n)
			total += p.n - p.offset
		} else {
			f.mu.Lock()
			unseen := int(p.hseq + bat.OID(p.n) - f.seen[i])
			f.mu.Unlock()
			// Load shedding may have evicted unseen arrivals; only what is
			// actually in the snapshot counts as processed.
			if unseen > p.n {
				unseen = p.n
			}
			total += unseen
		}
		pins[i] = p
	}
	if total == 0 {
		unlock()
		return nil
	}

	if f.runner != nil {
		return f.fireWindowed(pins[0], unlock, groupMax, hasGroup)
	}

	ctx := exec.NewContext(f.catalog)
	if f.join != nil {
		ctx.Joins[f.join.Node()] = f.join
	}
	for _, p := range pins {
		ctx.Overrides[p.in.Bind] = p.view
	}
	rel, err := exec.Run(f.plan, ctx)
	if err != nil {
		unlock()
		return fmt.Errorf("factory %s: %w", f.name, err)
	}

	// Consumption: remove what the basket expressions referenced (§2.3:
	// "all tuples consumed are removed from their input baskets").
	maxTS := int64(0)
	for _, p := range pins {
		if tsIdx := p.in.Basket.Schema().Index(catalog.TimestampColumn); tsIdx >= 0 && p.n-p.offset > 0 {
			last := p.view.Get(tsIdx, p.n-p.offset-1).I
			if last > maxTS {
				maxTS = last
			}
		}
		switch p.in.Mode {
		case Owned:
			if f.join != nil {
				// Join factories consume the whole snapshot: what future
				// firings need lives in the join state, and re-examining
				// retained tuples would re-probe duplicates.
				p.in.Basket.LockedDropPrefix(p.n)
			} else {
				// Consumed positions are relative to the pinned snapshot.
				p.in.Basket.LockedRemove(ctx.Consumed[p.in.Bind])
			}
		case Shared:
			p.in.Basket.LockedSetMark(p.in.ReaderID, p.hseq+bat.OID(p.n))
		}
	}
	f.mu.Lock()
	for i, p := range pins {
		if p.in.Mode == Owned {
			f.seen[i] = p.hseq + bat.OID(p.n)
		}
	}
	f.mu.Unlock()
	unlock()

	return f.deliver(rel, maxTS, total)
}

// fireWindowed moves the unseen tuples of the (single) input into the
// window runner and emits any completed windows. The batch is copied
// before consumption so basket compaction cannot disturb it. runnerMu is
// held across delivery so concurrent FlushWindows calls cannot
// interleave their emissions between ours.
func (f *Factory) fireWindowed(p pinned, unlock func(), groupMax int64, hasGroup bool) error {
	rows := p.n - p.offset
	batch := &storage.Relation{Schema: p.in.Basket.Schema(), Cols: p.view.CloneColumns()}
	switch p.in.Mode {
	case Owned:
		p.in.Basket.LockedDropPrefix(p.n)
		f.mu.Lock()
		f.seen[0] = p.hseq + bat.OID(p.n)
		f.mu.Unlock()
	case Shared:
		p.in.Basket.LockedSetMark(p.in.ReaderID, p.hseq+bat.OID(p.n))
	}
	// runnerMu must be taken BEFORE the basket locks are released:
	// FlushWindows treats "backlog empty" as proof that every routed
	// tuple reached the runner, but a pin drains the basket before the
	// tuples are appended. Holding runnerMu across the gap means a
	// flusher that saw the drained basket blocks here until the pinned
	// batch is in — otherwise it can admit a group reading and seal
	// windows this batch still belongs to, mislabeling it late.
	f.runnerMu.Lock()
	defer f.runnerMu.Unlock()
	unlock()

	if hasGroup {
		f.runner.ObserveGroup(groupMax)
	}
	results, err := f.runner.Append(batch)
	if err != nil {
		return fmt.Errorf("factory %s: %w", f.name, err)
	}
	f.mu.Lock()
	f.stats.TuplesIn += int64(rows)
	f.mu.Unlock()
	return f.deliverWindows(results)
}

// deliverWindows appends emitted window results to the outputs and then
// publishes the delivered frontier; the caller holds runnerMu.
func (f *Factory) deliverWindows(results []window.Result) error {
	for _, res := range results {
		rel := res.Rel
		if f.tagWindowEnd {
			wend := vector.NewWithCap(vector.Timestamp, rel.NumRows())
			for i := 0; i < rel.NumRows(); i++ {
				wend.AppendInt(res.End)
			}
			rel = &storage.Relation{Schema: rel.Schema, Cols: append(append([]*vector.Vector(nil), rel.Cols...), wend)}
		}
		if err := f.deliver(rel, f.windowTS(res), 0); err != nil {
			return err
		}
	}
	// The frontier moves only after the results above are in the output
	// baskets — a windowed merge reading it can rely on every window at
	// or below it being fully appended.
	if wm, ok := f.runner.Watermark(); ok {
		for {
			cur := atomic.LoadInt64(&f.frontier)
			if wm <= cur || atomic.CompareAndSwapInt64(&f.frontier, cur, wm) {
				break
			}
		}
	}
	return nil
}

// windowTS converts a window result boundary into a latency reference:
// arrival-time window ends are clock-domain timestamps. Count-based ends
// are tuple indexes and event-time ends live in the application's event
// domain — neither is comparable to the clock, so they carry no latency
// information.
func (f *Factory) windowTS(res window.Result) int64 {
	if spec := f.runner.Spec(); spec.Kind == sql.WindowRange && !spec.EventTime {
		return res.End
	}
	return 0
}

// FlushWindows advances time-based windows to the current clock and
// delivers any completed results (used when the stream pauses).
// Event-time runners ignore the clock but still republish their
// frontier.
func (f *Factory) FlushWindows() error {
	if f.runner == nil {
		return nil
	}
	// A group reading may only be admitted while our backlog is empty:
	// with unprocessed input pending, the group may already be past
	// tuples we have not appended yet (read the group FIRST — anything
	// arriving after the read carries timestamps at or beyond it, within
	// the lateness bound). An empty backlog can also mean a concurrent
	// Fire pinned the batch moments ago; that is safe only because
	// fireWindowed acquires runnerMu before releasing its basket locks,
	// so taking runnerMu below orders us after that batch's Append.
	groupMax, hasGroup := f.runner.GroupMax()
	if hasGroup && f.available(0) > 0 {
		hasGroup = false
	}
	f.runnerMu.Lock()
	defer f.runnerMu.Unlock()
	if hasGroup {
		f.runner.ObserveGroup(groupMax)
	}
	results, err := f.runner.Flush(f.clock.Now())
	if err != nil {
		return err
	}
	return f.deliverWindows(results)
}

// State is the serializable image of a factory for checkpoints: the
// counters, the delivered window frontier, the per-input consumption
// watermarks (relative to each basket's content start, so they survive
// the OID reset of a restore), and the window/join operator state.
// Shared-mode marks are not here — they live in the basket image.
type State struct {
	Stats    Stats
	Frontier int64
	SeenRel  []int64
	Window   *window.State
	Join     *exec.JoinState
}

// CaptureState snapshots the factory. The engine holds its consistency
// gate while calling, so no firing is in flight; basket and runner
// locks are still taken for memory-visibility.
func (f *Factory) CaptureState() *State {
	st := &State{Frontier: atomic.LoadInt64(&f.frontier)}
	f.mu.Lock()
	st.Stats = f.stats
	seen := append([]bat.OID(nil), f.seen...)
	f.mu.Unlock()
	st.SeenRel = make([]int64, len(f.inputs))
	for i, in := range f.inputs {
		if in.Mode != Owned {
			continue
		}
		hseq, n := in.Basket.Bounds()
		st.SeenRel[i] = min(max(int64(seen[i]-hseq), 0), int64(n))
	}
	if f.runner != nil {
		f.runnerMu.Lock()
		st.Window = f.runner.Snapshot()
		f.runnerMu.Unlock()
	}
	if f.join != nil {
		st.Join = f.join.Snapshot()
	}
	return st
}

// RestoreState loads a snapshot into a freshly built factory whose input
// baskets have already been restored. The relative watermarks are
// re-anchored to the baskets' current head OIDs — critical for
// predicate-window retention, where tuples below the watermark must not
// re-trigger (or be re-consumed as fresh arrivals) after a restart.
func (f *Factory) RestoreState(st *State) error {
	if len(st.SeenRel) != len(f.inputs) {
		return fmt.Errorf("factory %s: restore image has %d inputs, want %d", f.name, len(st.SeenRel), len(f.inputs))
	}
	// Read basket heads before taking f.mu: Bounds takes Basket.mu, which
	// sits above Factory.mu in the lock hierarchy (basket locks are
	// acquired first on the firing path).
	heads := make([]bat.OID, len(f.inputs))
	for i, in := range f.inputs {
		if in.Mode != Owned {
			continue
		}
		heads[i], _ = in.Basket.Bounds()
	}
	f.mu.Lock()
	f.stats = st.Stats
	for i, in := range f.inputs {
		if in.Mode != Owned {
			continue
		}
		f.seen[i] = heads[i] + bat.OID(st.SeenRel[i])
	}
	f.mu.Unlock()
	atomic.StoreInt64(&f.frontier, st.Frontier)
	if st.Window != nil {
		if f.runner == nil {
			return fmt.Errorf("factory %s: restore image has window state but no runner", f.name)
		}
		f.runnerMu.Lock()
		err := f.runner.Restore(st.Window)
		f.runnerMu.Unlock()
		if err != nil {
			return fmt.Errorf("factory %s: %w", f.name, err)
		}
	}
	if st.Join != nil {
		if f.join == nil {
			return fmt.Errorf("factory %s: restore image has join state but no join", f.name)
		}
		if err := f.join.Restore(st.Join); err != nil {
			return fmt.Errorf("factory %s: %w", f.name, err)
		}
	}
	return nil
}

func (f *Factory) deliver(rel *storage.Relation, maxTS int64, tuplesIn int) error {
	if maxTS > 0 {
		f.Latency.Observe(f.clock.Now() - maxTS)
	}
	for _, out := range f.outputs {
		if err := out.AppendRelation(rel); err != nil {
			return fmt.Errorf("factory %s: output %s: %w", f.name, out.Name(), err)
		}
	}
	// Counters move only after the outputs hold the emission, so a reader
	// observing TuplesIn == ingested knows every result has left the
	// factory (completion detection in benches and drain monitors).
	f.mu.Lock()
	f.stats.Firings++
	f.stats.TuplesIn += int64(tuplesIn)
	f.stats.TuplesOut += int64(rel.NumRows())
	f.mu.Unlock()
	if f.onResult != nil && rel.NumRows() > 0 {
		f.onResult(rel, maxTS)
	}
	return nil
}
