package factory

import (
	"testing"

	"repro/internal/basket"
	"repro/internal/catalog"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/vector"
	"repro/internal/window"
)

// env is a tiny test rig: one stream basket registered in a catalog, plus
// a compiled continuous plan over it.
type env struct {
	cat   *catalog.Catalog
	clk   *metrics.ManualClock
	in    *basket.Basket
	out   *basket.Basket
	plan  plan.Node
	sel   *sql.SelectStmt
	query string
}

func newEnv(t *testing.T, query string) *env {
	t.Helper()
	clk := metrics.NewManualClock(1000)
	cat := catalog.New()
	schema := catalog.NewSchema(
		catalog.Column{Name: "v", Type: vector.Int64},
	)
	in := basket.New("s", schema, clk)
	if err := cat.Register("s", catalog.KindBasket, in); err != nil {
		t.Fatal(err)
	}
	sel, err := sql.ParseSelect(query)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	out := basket.New("out", p.Schema(), clk)
	return &env{cat: cat, clk: clk, in: in, out: out, plan: p, sel: sel, query: query}
}

func (e *env) push(t *testing.T, vals ...int64) {
	t.Helper()
	rows := make([][]vector.Value, len(vals))
	for i, v := range vals {
		rows[i] = []vector.Value{vector.NewInt(v)}
	}
	if err := e.in.AppendRows(rows); err != nil {
		t.Fatal(err)
	}
}

func TestFactoryBasicLoop(t *testing.T) {
	e := newEnv(t, "SELECT * FROM [SELECT * FROM s] AS S WHERE S.v > 10")
	f, err := New("f", e.plan, e.cat,
		[]Input{{Basket: e.in, Mode: Owned}},
		[]Sink{e.out}, WithClock(e.clk))
	if err != nil {
		t.Fatal(err)
	}
	if f.Ready() {
		t.Fatal("empty input: not ready")
	}
	e.push(t, 5, 15, 25)
	if !f.Ready() {
		t.Fatal("should be ready")
	}
	if err := f.Fire(); err != nil {
		t.Fatal(err)
	}
	if e.in.Len() != 0 {
		t.Errorf("input not consumed: %d", e.in.Len())
	}
	if e.out.Len() != 2 {
		t.Errorf("output rows = %d", e.out.Len())
	}
	st := f.Stats()
	if st.Firings != 1 || st.TuplesIn != 3 || st.TuplesOut != 2 {
		t.Errorf("stats = %+v", st)
	}
	// Firing with no input is a no-op, not an error.
	if err := f.Fire(); err != nil {
		t.Fatal(err)
	}
	if f.Stats().Firings != 1 {
		t.Error("empty fire should not count")
	}
}

func TestFactoryPredicateWindowRetainsTuples(t *testing.T) {
	e := newEnv(t, "SELECT * FROM [SELECT * FROM s WHERE v < 100] AS S")
	f, err := New("f", e.plan, e.cat,
		[]Input{{Basket: e.in, Mode: Owned}}, []Sink{e.out}, WithClock(e.clk))
	if err != nil {
		t.Fatal(err)
	}
	e.push(t, 50, 500, 70)
	if err := f.Fire(); err != nil {
		t.Fatal(err)
	}
	if e.in.Len() != 1 {
		t.Errorf("retained = %d, want 1", e.in.Len())
	}
	if e.out.Len() != 2 {
		t.Errorf("emitted = %d, want 2", e.out.Len())
	}
}

func TestFactoryMinTuples(t *testing.T) {
	e := newEnv(t, "SELECT COUNT(*) AS n FROM [SELECT * FROM s] AS S")
	f, err := New("f", e.plan, e.cat,
		[]Input{{Basket: e.in, Mode: Owned}}, []Sink{e.out},
		WithMinTuples(5), WithClock(e.clk))
	if err != nil {
		t.Fatal(err)
	}
	e.push(t, 1, 2, 3)
	if f.Ready() {
		t.Error("below threshold should not be ready")
	}
	e.push(t, 4, 5)
	if !f.Ready() {
		t.Error("at threshold should be ready")
	}
	_ = f.Fire()
	if e.out.Len() != 1 {
		t.Errorf("out rows = %d", e.out.Len())
	}
	snap := e.out.Snapshot()
	if snap.Get(0, 0).I != 5 {
		t.Errorf("count = %v", snap.Get(0, 0))
	}
}

func TestFactorySharedWatermarkNoDuplicates(t *testing.T) {
	e := newEnv(t, "SELECT * FROM [SELECT * FROM s] AS S")
	f1, _ := New("f1", e.plan, e.cat,
		[]Input{{Basket: e.in, Mode: Shared}}, []Sink{e.out}, WithClock(e.clk))
	out2 := basket.New("out2", e.plan.Schema(), e.clk)
	f2, _ := New("f2", e.plan, e.cat,
		[]Input{{Basket: e.in, Mode: Shared}}, []Sink{out2}, WithClock(e.clk))

	e.push(t, 1, 2, 3)
	_ = f1.Fire()
	// Basket retains for f2.
	if e.in.Len() != 3 {
		t.Errorf("retained = %d", e.in.Len())
	}
	if f1.Ready() {
		t.Error("f1 has seen everything; must not refire")
	}
	_ = f2.Fire()
	if e.in.Len() != 0 {
		t.Errorf("after both: %d", e.in.Len())
	}
	if e.out.Len() != 3 || out2.Len() != 3 {
		t.Errorf("outputs: %d %d", e.out.Len(), out2.Len())
	}
	// Second round: only new tuples.
	e.push(t, 4)
	_ = f1.Fire()
	_ = f2.Fire()
	if e.out.Len() != 4 || out2.Len() != 4 {
		t.Errorf("after round 2: %d %d", e.out.Len(), out2.Len())
	}
	f1.Close()
	f2.Close()
}

func TestFactoryOnResultCallback(t *testing.T) {
	e := newEnv(t, "SELECT * FROM [SELECT * FROM s] AS S")
	var got int
	var gotTS int64
	f, _ := New("f", e.plan, e.cat,
		[]Input{{Basket: e.in, Mode: Owned}}, nil,
		WithOnResult(func(rel *storage.Relation, maxTS int64) {
			got += rel.NumRows()
			gotTS = maxTS
		}), WithClock(e.clk))
	e.clk.Set(7777)
	e.push(t, 1, 2)
	_ = f.Fire()
	if got != 2 {
		t.Errorf("callback rows = %d", got)
	}
	if gotTS != 7777 {
		t.Errorf("callback maxTS = %d", gotTS)
	}
}

func TestFactoryLatencyObserved(t *testing.T) {
	e := newEnv(t, "SELECT * FROM [SELECT * FROM s] AS S")
	f, _ := New("f", e.plan, e.cat,
		[]Input{{Basket: e.in, Mode: Owned}}, []Sink{e.out}, WithClock(e.clk))
	e.clk.Set(1000)
	e.push(t, 1)
	e.clk.Set(1500)
	_ = f.Fire()
	if f.Latency.Count() != 1 {
		t.Fatalf("latency observations = %d", f.Latency.Count())
	}
	if got := f.Latency.Max(); got != 500 {
		t.Errorf("latency = %d, want 500", got)
	}
}

func TestFactoryWindowed(t *testing.T) {
	e := newEnv(t, "SELECT SUM(S.v) AS total FROM [SELECT * FROM s] AS S WINDOW ROWS 3 SLIDE 3")
	bufSchema := e.in.Schema()
	spec := window.Spec{Kind: sql.WindowRows, Size: 3, Slide: 3, TSIndex: bufSchema.Index(catalog.TimestampColumn)}
	pe, ok := window.RecognizeIncremental(e.plan)
	if !ok {
		t.Fatal("plan should be recognizable")
	}
	runner, err := window.NewRunner(spec, window.Incremental, nil, pe, bufSchema)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New("f", e.plan, e.cat,
		[]Input{{Basket: e.in, Mode: Owned}}, []Sink{e.out},
		WithWindow(runner), WithClock(e.clk))
	if err != nil {
		t.Fatal(err)
	}
	e.push(t, 1, 2)
	_ = f.Fire()
	if e.out.Len() != 0 {
		t.Fatal("window emitted early")
	}
	if e.in.Len() != 0 {
		t.Error("windowed factory should consume into its buffer")
	}
	e.push(t, 3, 4)
	_ = f.Fire()
	if e.out.Len() != 1 {
		t.Fatalf("windows = %d", e.out.Len())
	}
	if got := e.out.Snapshot().Get(0, 0).I; got != 6 {
		t.Errorf("window sum = %d", got)
	}
}

func TestFactoryErrors(t *testing.T) {
	e := newEnv(t, "SELECT * FROM [SELECT * FROM s] AS S")
	if _, err := New("f", e.plan, e.cat, nil, nil); err == nil {
		t.Error("no inputs should fail")
	}
	// Output schema mismatch surfaces as a Fire error.
	wrong := basket.New("wrong", catalog.NewSchema(
		catalog.Column{Name: "a", Type: vector.String},
		catalog.Column{Name: "b", Type: vector.String},
	), e.clk)
	f, _ := New("f", e.plan, e.cat,
		[]Input{{Basket: e.in, Mode: Owned}}, []Sink{wrong}, WithClock(e.clk))
	e.push(t, 1)
	if err := f.Fire(); err == nil {
		t.Error("type-mismatched output should fail")
	}
}

func TestFactoryNameAndPlanAccessors(t *testing.T) {
	e := newEnv(t, "SELECT * FROM [SELECT * FROM s] AS S")
	f, _ := New("myf", e.plan, e.cat,
		[]Input{{Basket: e.in, Mode: Owned}}, nil, WithClock(e.clk))
	if f.Name() != "myf" || f.Plan() == nil {
		t.Error("accessors broken")
	}
	if err := f.FlushWindows(); err != nil {
		t.Errorf("FlushWindows on unwindowed factory: %v", err)
	}
}
