package vector

import (
	"testing"
	"testing/quick"
)

func TestParseType(t *testing.T) {
	cases := map[string]Type{
		"int": Int64, "INTEGER": Int64, "BigInt": Int64,
		"float": Float64, "DOUBLE": Float64, "real": Float64,
		"bool": Bool, "BOOLEAN": Bool,
		"varchar": String, "TEXT": String, "string": String,
		"timestamp": Timestamp, "DATETIME": Timestamp,
	}
	for in, want := range cases {
		got, err := ParseType(in)
		if err != nil {
			t.Fatalf("ParseType(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("ParseType(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Error("ParseType(blob) should fail")
	}
}

func TestTypeString(t *testing.T) {
	for typ, want := range map[Type]string{
		Int64: "BIGINT", Float64: "DOUBLE", Bool: "BOOLEAN",
		String: "VARCHAR", Timestamp: "TIMESTAMP", Unknown: "UNKNOWN",
	} {
		if got := typ.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", typ, got, want)
		}
	}
}

func TestValueRoundTrip(t *testing.T) {
	vals := []Value{
		NewInt(-42), NewFloat(3.5), NewBool(true), NewBool(false),
		NewString("hello"), NewTimestamp(1234567890),
	}
	for _, v := range vals {
		got, err := Parse(v.Typ, v.String())
		if err != nil {
			t.Fatalf("Parse(%v, %q): %v", v.Typ, v.String(), err)
		}
		if Compare(got, v) != 0 {
			t.Errorf("round trip %v -> %q -> %v", v, v.String(), got)
		}
	}
}

func TestParseNull(t *testing.T) {
	for _, s := range []string{"", "NULL", "null", "  "} {
		v, err := Parse(Int64, s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !v.Null {
			t.Errorf("Parse(%q) = %v, want NULL", s, v)
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(Int64, "abc"); err == nil {
		t.Error("Parse int abc should fail")
	}
	if _, err := Parse(Float64, "x.y"); err == nil {
		t.Error("Parse float x.y should fail")
	}
	if _, err := Parse(Bool, "maybe"); err == nil {
		t.Error("Parse bool maybe should fail")
	}
	if _, err := Parse(Timestamp, "noon"); err == nil {
		t.Error("Parse timestamp noon should fail")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewFloat(2.5), -1},
		{NewString("a"), NewString("b"), -1},
		{NewBool(false), NewBool(true), -1},
		{NewBool(true), NewBool(true), 0},
		{NullValue(Int64), NewInt(0), -1},
		{NewInt(0), NullValue(Int64), 1},
		{NullValue(Int64), NullValue(Int64), 0},
		{NewTimestamp(5), NewTimestamp(9), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestAppendAndGet(t *testing.T) {
	v := New(Int64)
	v.AppendInt(10)
	v.AppendNull()
	v.AppendInt(30)
	if v.Len() != 3 {
		t.Fatalf("Len = %d, want 3", v.Len())
	}
	if got := v.Get(0); got.I != 10 || got.Null {
		t.Errorf("Get(0) = %v", got)
	}
	if !v.Get(1).Null {
		t.Error("Get(1) should be NULL")
	}
	if !v.HasNulls() {
		t.Error("HasNulls should be true")
	}
	if got := v.Get(2); got.I != 30 {
		t.Errorf("Get(2) = %v", got)
	}
}

func TestAppendValueAllTypes(t *testing.T) {
	for _, tc := range []struct {
		typ Type
		val Value
	}{
		{Int64, NewInt(7)},
		{Float64, NewFloat(2.25)},
		{Bool, NewBool(true)},
		{String, NewString("x")},
		{Timestamp, NewTimestamp(99)},
	} {
		v := New(tc.typ)
		v.AppendValue(tc.val)
		v.AppendValue(NullValue(tc.typ))
		if v.Len() != 2 {
			t.Fatalf("%v: Len = %d", tc.typ, v.Len())
		}
		if Compare(v.Get(0), tc.val) != 0 {
			t.Errorf("%v: Get(0) = %v, want %v", tc.typ, v.Get(0), tc.val)
		}
		if !v.Get(1).Null {
			t.Errorf("%v: Get(1) should be NULL", tc.typ)
		}
	}
}

func TestSet(t *testing.T) {
	v := FromInts([]int64{1, 2, 3})
	v.Set(1, NewInt(20))
	if v.Get(1).I != 20 {
		t.Errorf("Set int failed: %v", v.Get(1))
	}
	v.Set(2, NullValue(Int64))
	if !v.Get(2).Null {
		t.Error("Set NULL failed")
	}
	v.Set(2, NewInt(5))
	if v.Get(2).Null || v.Get(2).I != 5 {
		t.Error("Set over NULL failed")
	}
}

func TestWindow(t *testing.T) {
	v := FromInts([]int64{0, 1, 2, 3, 4, 5})
	w := v.Window(2, 5)
	if w.Len() != 3 {
		t.Fatalf("window len = %d", w.Len())
	}
	for i, want := range []int64{2, 3, 4} {
		if got := w.Get(i).I; got != want {
			t.Errorf("w[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestTake(t *testing.T) {
	v := FromStrings([]string{"a", "b", "c", "d"})
	got := v.Take([]int{3, 1, 1})
	want := []string{"d", "b", "b"}
	for i := range want {
		if got.Get(i).S != want[i] {
			t.Errorf("Take[%d] = %q, want %q", i, got.Get(i).S, want[i])
		}
	}
}

func TestTakeWithNulls(t *testing.T) {
	v := New(Float64)
	v.AppendFloat(1.5)
	v.AppendNull()
	v.AppendFloat(3.5)
	got := v.Take([]int{1, 2})
	if !got.Get(0).Null {
		t.Error("Take should preserve NULL")
	}
	if got.Get(1).F != 3.5 {
		t.Errorf("Take[1] = %v", got.Get(1))
	}
}

func TestAppendVector(t *testing.T) {
	a := FromInts([]int64{1, 2})
	b := New(Int64)
	b.AppendInt(3)
	b.AppendNull()
	a.AppendVector(b)
	if a.Len() != 4 {
		t.Fatalf("Len = %d", a.Len())
	}
	if a.Get(2).I != 3 || !a.Get(3).Null {
		t.Errorf("append vector wrong: %v %v", a.Get(2), a.Get(3))
	}
}

func TestDropPrefix(t *testing.T) {
	v := FromInts([]int64{1, 2, 3, 4, 5})
	v.DropPrefix(2)
	if v.Len() != 3 || v.Get(0).I != 3 {
		t.Errorf("DropPrefix: %v", v)
	}
	v.DropPrefix(3)
	if v.Len() != 0 {
		t.Errorf("DropPrefix to empty: %v", v)
	}
}

func TestRetain(t *testing.T) {
	v := FromInts([]int64{10, 20, 30, 40, 50})
	v.Retain([]int{0, 2, 4})
	if v.Len() != 3 {
		t.Fatalf("Retain len = %d", v.Len())
	}
	for i, want := range []int64{10, 30, 50} {
		if v.Get(i).I != want {
			t.Errorf("Retain[%d] = %d, want %d", i, v.Get(i).I, want)
		}
	}
}

func TestRetainWithNulls(t *testing.T) {
	v := New(String)
	v.AppendString("a")
	v.AppendNull()
	v.AppendString("c")
	v.Retain([]int{1, 2})
	if !v.Get(0).Null || v.Get(1).S != "c" {
		t.Errorf("RetainWithNulls: %v", v)
	}
}

func TestCloneIndependence(t *testing.T) {
	v := FromInts([]int64{1, 2, 3})
	c := v.Clone()
	c.Set(0, NewInt(99))
	if v.Get(0).I != 1 {
		t.Error("Clone shares storage")
	}
}

func TestConst(t *testing.T) {
	v := Const(NewFloat(2.5), 4)
	if v.Len() != 4 {
		t.Fatalf("Const len = %d", v.Len())
	}
	for i := 0; i < 4; i++ {
		if v.Get(i).F != 2.5 {
			t.Errorf("Const[%d] = %v", i, v.Get(i))
		}
	}
}

func TestTruncate(t *testing.T) {
	v := FromBools([]bool{true, false, true})
	v.Truncate(1)
	if v.Len() != 1 || !v.Get(0).B {
		t.Errorf("Truncate: %v", v)
	}
}

func TestStringPreview(t *testing.T) {
	v := FromInts([]int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	s := v.String()
	if s == "" {
		t.Error("String() empty")
	}
}

// Property: DropPrefix(n) is equivalent to rebuilding from the suffix.
func TestPropDropPrefixEqualsSuffix(t *testing.T) {
	f := func(vals []int64, nRaw uint8) bool {
		v := FromInts(append([]int64(nil), vals...))
		n := int(nRaw)
		if n > v.Len() {
			n = v.Len()
		}
		want := append([]int64(nil), vals[n:]...)
		v.DropPrefix(n)
		if v.Len() != len(want) {
			return false
		}
		for i := range want {
			if v.Get(i).I != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Take then Get matches direct Get.
func TestPropTakeMatchesGet(t *testing.T) {
	f := func(vals []float64, idxRaw []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		v := FromFloats(vals)
		pos := make([]int, len(idxRaw))
		for i, r := range idxRaw {
			pos[i] = int(r) % len(vals)
		}
		got := v.Take(pos)
		for i, p := range pos {
			if got.Get(i).F != vals[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric.
func TestPropCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(NewInt(a), NewInt(b)) == -Compare(NewInt(b), NewInt(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
