package vector

// Wire is the serializable form of a Vector: the same typed payload
// slices with exported fields, so encoding/gob (the durability layer's
// codec) can move column data into WAL records and checkpoint images
// without reflection on unexported state. Conversions copy the payload
// — a Wire never aliases live vector storage.
type Wire struct {
	Typ   Type
	Ints  []int64
	Flts  []float64
	Bools []bool
	Strs  []string
	Nulls []bool
}

// Wire returns a deep-copied serializable form of the vector.
func (v *Vector) Wire() Wire {
	w := Wire{Typ: v.typ}
	if v.ints != nil {
		w.Ints = append([]int64(nil), v.ints...)
	}
	if v.flts != nil {
		w.Flts = append([]float64(nil), v.flts...)
	}
	if v.bools != nil {
		w.Bools = append([]bool(nil), v.bools...)
	}
	if v.strs != nil {
		w.Strs = append([]string(nil), v.strs...)
	}
	if v.nulls != nil {
		w.Nulls = append([]bool(nil), v.nulls...)
	}
	return w
}

// FromWire rebuilds a vector from its serialized form. The wire's
// slices are adopted directly (a decoded Wire is already a private
// copy).
func FromWire(w Wire) *Vector {
	return &Vector{typ: w.Typ, ints: w.Ints, flts: w.Flts, bools: w.Bools, strs: w.Strs, nulls: w.Nulls}
}

// WireColumns converts a column set to wire form.
func WireColumns(cols []*Vector) []Wire {
	out := make([]Wire, len(cols))
	for i, c := range cols {
		out[i] = c.Wire()
	}
	return out
}

// ColumnsFromWire rebuilds a column set from wire form.
func ColumnsFromWire(ws []Wire) []*Vector {
	out := make([]*Vector, len(ws))
	for i, w := range ws {
		out[i] = FromWire(w)
	}
	return out
}
