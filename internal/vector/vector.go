// Package vector provides typed, densely packed columns — the lowest layer
// of the columnar kernel. A Vector stores the values of one attribute for a
// run of tuples, mirroring the tail column of a MonetDB BAT.
package vector

import (
	"fmt"
	"strconv"
	"strings"
)

// Type enumerates the value types the kernel supports.
type Type uint8

// Supported column types.
const (
	Unknown Type = iota
	Int64
	Float64
	Bool
	String
	Timestamp // nanoseconds since the Unix epoch, stored as int64
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case Bool:
		return "BOOLEAN"
	case String:
		return "VARCHAR"
	case Timestamp:
		return "TIMESTAMP"
	default:
		return "UNKNOWN"
	}
}

// Numeric reports whether the type supports arithmetic.
func (t Type) Numeric() bool {
	return t == Int64 || t == Float64 || t == Timestamp
}

// ParseType converts a SQL type name to a Type. It accepts the common
// aliases (INT, INTEGER, BIGINT, FLOAT, DOUBLE, REAL, TEXT, VARCHAR,
// BOOLEAN, TIMESTAMP).
func ParseType(name string) (Type, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT":
		return Int64, nil
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC":
		return Float64, nil
	case "BOOL", "BOOLEAN":
		return Bool, nil
	case "VARCHAR", "TEXT", "STRING", "CHAR", "CLOB":
		return String, nil
	case "TIMESTAMP", "DATETIME":
		return Timestamp, nil
	default:
		return Unknown, fmt.Errorf("vector: unknown type %q", name)
	}
}

// Value is a single scalar used at the boundaries of the kernel (constant
// folding, row interchange, adapters). Inside operators, values stay in
// typed slices.
type Value struct {
	Typ  Type
	Null bool
	I    int64 // Int64 and Timestamp payload
	F    float64
	B    bool
	S    string
}

// NullValue returns the NULL of the given type.
func NullValue(t Type) Value { return Value{Typ: t, Null: true} }

// NewInt returns an Int64 value.
func NewInt(v int64) Value { return Value{Typ: Int64, I: v} }

// NewFloat returns a Float64 value.
func NewFloat(v float64) Value { return Value{Typ: Float64, F: v} }

// NewBool returns a Bool value.
func NewBool(v bool) Value { return Value{Typ: Bool, B: v} }

// NewString returns a String value.
func NewString(v string) Value { return Value{Typ: String, S: v} }

// NewTimestamp returns a Timestamp value from nanoseconds since the epoch.
func NewTimestamp(ns int64) Value { return Value{Typ: Timestamp, I: ns} }

// AsFloat converts a numeric value to float64. Booleans convert to 0/1.
func (v Value) AsFloat() float64 {
	switch v.Typ {
	case Int64, Timestamp:
		return float64(v.I)
	case Float64:
		return v.F
	case Bool:
		if v.B {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// AsInt converts a numeric value to int64, truncating floats.
func (v Value) AsInt() int64 {
	switch v.Typ {
	case Int64, Timestamp:
		return v.I
	case Float64:
		return int64(v.F)
	case Bool:
		if v.B {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// String renders the value in the flat-text interchange format used by the
// receptors and emitters. NULL renders as the empty marker.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Typ {
	case Int64, Timestamp:
		return strconv.FormatInt(v.I, 10)
	case Float64:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case Bool:
		if v.B {
			return "true"
		}
		return "false"
	case String:
		return v.S
	default:
		return "?"
	}
}

// Compare orders two values of the same type: -1, 0, or +1. NULL sorts
// before every non-NULL value; two NULLs compare equal.
func Compare(a, b Value) int {
	if a.Null || b.Null {
		switch {
		case a.Null && b.Null:
			return 0
		case a.Null:
			return -1
		default:
			return 1
		}
	}
	switch a.Typ {
	case Int64, Timestamp:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	case Float64:
		switch {
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		}
		return 0
	case Bool:
		switch {
		case !a.B && b.B:
			return -1
		case a.B && !b.B:
			return 1
		}
		return 0
	case String:
		return strings.Compare(a.S, b.S)
	default:
		return 0
	}
}

// Parse converts the flat-text representation of a value into a typed Value.
// Empty strings and the literal "NULL" parse as NULL.
func Parse(t Type, s string) (Value, error) {
	s = strings.TrimSpace(s)
	if s == "" || strings.EqualFold(s, "null") {
		return NullValue(t), nil
	}
	switch t {
	case Int64:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("vector: parse %q as BIGINT: %w", s, err)
		}
		return NewInt(i), nil
	case Timestamp:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("vector: parse %q as TIMESTAMP: %w", s, err)
		}
		return NewTimestamp(i), nil
	case Float64:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("vector: parse %q as DOUBLE: %w", s, err)
		}
		return NewFloat(f), nil
	case Bool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Value{}, fmt.Errorf("vector: parse %q as BOOLEAN: %w", s, err)
		}
		return NewBool(b), nil
	case String:
		return NewString(s), nil
	default:
		return Value{}, fmt.Errorf("vector: parse into unknown type")
	}
}

// Vector is a densely packed column of one Type. Only the slice matching
// the type is populated. The null mask is allocated lazily: a nil nulls
// slice means the column contains no NULLs.
type Vector struct {
	typ   Type
	ints  []int64   // Int64, Timestamp
	flts  []float64 // Float64
	bools []bool    // Bool
	strs  []string  // String
	nulls []bool    // lazily allocated; nil == no NULLs
}

// New returns an empty vector of type t.
func New(t Type) *Vector { return NewWithCap(t, 0) }

// NewWithCap returns an empty vector of type t with capacity hint n.
func NewWithCap(t Type, n int) *Vector {
	v := &Vector{typ: t}
	switch t {
	case Int64, Timestamp:
		v.ints = make([]int64, 0, n)
	case Float64:
		v.flts = make([]float64, 0, n)
	case Bool:
		v.bools = make([]bool, 0, n)
	case String:
		v.strs = make([]string, 0, n)
	}
	return v
}

// FromInts wraps an int64 slice as an Int64 vector (no copy).
func FromInts(vals []int64) *Vector { return &Vector{typ: Int64, ints: vals} }

// FromFloats wraps a float64 slice as a Float64 vector (no copy).
func FromFloats(vals []float64) *Vector { return &Vector{typ: Float64, flts: vals} }

// FromBools wraps a bool slice as a Bool vector (no copy).
func FromBools(vals []bool) *Vector { return &Vector{typ: Bool, bools: vals} }

// FromStrings wraps a string slice as a String vector (no copy).
func FromStrings(vals []string) *Vector { return &Vector{typ: String, strs: vals} }

// FromTimestamps wraps an int64 slice as a Timestamp vector (no copy).
func FromTimestamps(vals []int64) *Vector { return &Vector{typ: Timestamp, ints: vals} }

// Const returns a vector of n copies of value v.
func Const(v Value, n int) *Vector {
	out := NewWithCap(v.Typ, n)
	for i := 0; i < n; i++ {
		out.AppendValue(v)
	}
	return out
}

// Type returns the element type.
func (v *Vector) Type() Type { return v.typ }

// Len returns the number of elements.
func (v *Vector) Len() int {
	switch v.typ {
	case Int64, Timestamp:
		return len(v.ints)
	case Float64:
		return len(v.flts)
	case Bool:
		return len(v.bools)
	case String:
		return len(v.strs)
	default:
		return 0
	}
}

// HasNulls reports whether any element is NULL.
func (v *Vector) HasNulls() bool {
	for _, n := range v.nulls {
		if n {
			return true
		}
	}
	return false
}

// IsNull reports whether element i is NULL.
func (v *Vector) IsNull(i int) bool {
	return v.nulls != nil && v.nulls[i]
}

func (v *Vector) ensureNulls() {
	if v.nulls == nil {
		v.nulls = make([]bool, v.Len())
	}
	for len(v.nulls) < v.Len() {
		v.nulls = append(v.nulls, false)
	}
}

// Ints exposes the backing int64 slice (Int64/Timestamp vectors).
func (v *Vector) Ints() []int64 { return v.ints }

// Floats exposes the backing float64 slice (Float64 vectors).
func (v *Vector) Floats() []float64 { return v.flts }

// Bools exposes the backing bool slice (Bool vectors).
func (v *Vector) Bools() []bool { return v.bools }

// Strings exposes the backing string slice (String vectors).
func (v *Vector) Strings() []string { return v.strs }

// Nulls exposes the backing null mask (nil when no null was ever set).
func (v *Vector) Nulls() []bool { return v.nulls }

// AppendInt appends an int64 (Int64/Timestamp vectors).
func (v *Vector) AppendInt(x int64) {
	v.ints = append(v.ints, x)
	if v.nulls != nil {
		v.nulls = append(v.nulls, false)
	}
}

// AppendFloat appends a float64 (Float64 vectors).
func (v *Vector) AppendFloat(x float64) {
	v.flts = append(v.flts, x)
	if v.nulls != nil {
		v.nulls = append(v.nulls, false)
	}
}

// AppendBool appends a bool (Bool vectors).
func (v *Vector) AppendBool(x bool) {
	v.bools = append(v.bools, x)
	if v.nulls != nil {
		v.nulls = append(v.nulls, false)
	}
}

// AppendString appends a string (String vectors).
func (v *Vector) AppendString(x string) {
	v.strs = append(v.strs, x)
	if v.nulls != nil {
		v.nulls = append(v.nulls, false)
	}
}

// AppendNull appends a NULL element.
func (v *Vector) AppendNull() {
	switch v.typ {
	case Int64, Timestamp:
		v.ints = append(v.ints, 0)
	case Float64:
		v.flts = append(v.flts, 0)
	case Bool:
		v.bools = append(v.bools, false)
	case String:
		v.strs = append(v.strs, "")
	}
	v.ensureNulls()
	v.nulls[v.Len()-1] = true
}

// AppendValue appends a Value, which must match the vector type (NULLs of
// any type are accepted).
func (v *Vector) AppendValue(x Value) {
	if x.Null {
		v.AppendNull()
		return
	}
	switch v.typ {
	case Int64, Timestamp:
		v.AppendInt(x.I)
	case Float64:
		v.AppendFloat(x.F)
	case Bool:
		v.AppendBool(x.B)
	case String:
		v.AppendString(x.S)
	}
}

// AppendVector appends all elements of other, which must have the same type.
func (v *Vector) AppendVector(other *Vector) {
	if other == nil || other.Len() == 0 {
		return
	}
	if other.nulls != nil || v.nulls != nil {
		v.ensureNulls()
		other.ensureNulls()
		v.nulls = append(v.nulls, other.nulls...)
	}
	switch v.typ {
	case Int64, Timestamp:
		v.ints = append(v.ints, other.ints...)
	case Float64:
		v.flts = append(v.flts, other.flts...)
	case Bool:
		v.bools = append(v.bools, other.bools...)
	case String:
		v.strs = append(v.strs, other.strs...)
	}
}

// Get returns element i as a Value.
func (v *Vector) Get(i int) Value {
	if v.IsNull(i) {
		return NullValue(v.typ)
	}
	switch v.typ {
	case Int64:
		return NewInt(v.ints[i])
	case Timestamp:
		return NewTimestamp(v.ints[i])
	case Float64:
		return NewFloat(v.flts[i])
	case Bool:
		return NewBool(v.bools[i])
	case String:
		return NewString(v.strs[i])
	default:
		return Value{}
	}
}

// Set overwrites element i with x, which must match the vector type.
func (v *Vector) Set(i int, x Value) {
	if x.Null {
		v.ensureNulls()
		v.nulls[i] = true
		return
	}
	if v.nulls != nil {
		v.nulls[i] = false
	}
	switch v.typ {
	case Int64, Timestamp:
		v.ints[i] = x.I
	case Float64:
		v.flts[i] = x.F
	case Bool:
		v.bools[i] = x.B
	case String:
		v.strs[i] = x.S
	}
}

// Window returns a read-only view of elements [lo, hi). The view shares
// backing storage with v; callers must not append to it.
func (v *Vector) Window(lo, hi int) *Vector {
	out := &Vector{typ: v.typ}
	switch v.typ {
	case Int64, Timestamp:
		out.ints = v.ints[lo:hi:hi]
	case Float64:
		out.flts = v.flts[lo:hi:hi]
	case Bool:
		out.bools = v.bools[lo:hi:hi]
	case String:
		out.strs = v.strs[lo:hi:hi]
	}
	if v.nulls != nil {
		out.nulls = v.nulls[lo:hi:hi]
	}
	return out
}

// Take materializes a new vector containing the elements at the given
// positions, in order. It is the kernel's positional projection (MonetDB's
// leftfetchjoin against a candidate list).
func (v *Vector) Take(pos []int) *Vector {
	out := NewWithCap(v.typ, len(pos))
	switch v.typ {
	case Int64, Timestamp:
		for _, p := range pos {
			out.ints = append(out.ints, v.ints[p])
		}
	case Float64:
		for _, p := range pos {
			out.flts = append(out.flts, v.flts[p])
		}
	case Bool:
		for _, p := range pos {
			out.bools = append(out.bools, v.bools[p])
		}
	case String:
		for _, p := range pos {
			out.strs = append(out.strs, v.strs[p])
		}
	}
	if v.nulls != nil {
		out.nulls = make([]bool, 0, len(pos))
		for _, p := range pos {
			out.nulls = append(out.nulls, v.nulls[p])
		}
	}
	return out
}

// AppendTake appends src's elements at the given positions, each shifted
// down by base — the chunk-local form of Take used when gathering a
// candidate list that spans several column segments. Positions must
// satisfy base <= p < base+src.Len().
func (v *Vector) AppendTake(src *Vector, pos []int, base int) {
	switch v.typ {
	case Int64, Timestamp:
		for _, p := range pos {
			v.ints = append(v.ints, src.ints[p-base])
		}
	case Float64:
		for _, p := range pos {
			v.flts = append(v.flts, src.flts[p-base])
		}
	case Bool:
		for _, p := range pos {
			v.bools = append(v.bools, src.bools[p-base])
		}
	case String:
		for _, p := range pos {
			v.strs = append(v.strs, src.strs[p-base])
		}
	}
	if src.nulls != nil || v.nulls != nil {
		v.ensureNulls()
		if src.nulls != nil {
			tail := v.nulls[v.Len()-len(pos):]
			for i, p := range pos {
				tail[i] = src.nulls[p-base]
			}
		}
	}
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	out := &Vector{typ: v.typ}
	out.ints = append([]int64(nil), v.ints...)
	out.flts = append([]float64(nil), v.flts...)
	out.bools = append([]bool(nil), v.bools...)
	out.strs = append([]string(nil), v.strs...)
	if v.nulls != nil {
		out.nulls = append([]bool(nil), v.nulls...)
	}
	return out
}

// Truncate shortens the vector to n elements.
func (v *Vector) Truncate(n int) {
	switch v.typ {
	case Int64, Timestamp:
		v.ints = v.ints[:n]
	case Float64:
		v.flts = v.flts[:n]
	case Bool:
		v.bools = v.bools[:n]
	case String:
		v.strs = v.strs[:n]
	}
	if v.nulls != nil {
		v.nulls = v.nulls[:n]
	}
}

// DropPrefix removes the first n elements in place. Baskets use it to
// compact away consumed tuples.
func (v *Vector) DropPrefix(n int) {
	switch v.typ {
	case Int64, Timestamp:
		v.ints = append(v.ints[:0], v.ints[n:]...)
	case Float64:
		v.flts = append(v.flts[:0], v.flts[n:]...)
	case Bool:
		v.bools = append(v.bools[:0], v.bools[n:]...)
	case String:
		v.strs = append(v.strs[:0], v.strs[n:]...)
	}
	if v.nulls != nil {
		v.nulls = append(v.nulls[:0], v.nulls[n:]...)
	}
}

// Retain keeps only the elements at the given sorted positions, in place.
// Baskets use it to remove a consumed subset (predicate windows).
func (v *Vector) Retain(pos []int) {
	w := 0
	for _, p := range pos {
		switch v.typ {
		case Int64, Timestamp:
			v.ints[w] = v.ints[p]
		case Float64:
			v.flts[w] = v.flts[p]
		case Bool:
			v.bools[w] = v.bools[p]
		case String:
			v.strs[w] = v.strs[p]
		}
		if v.nulls != nil {
			v.nulls[w] = v.nulls[p]
		}
		w++
	}
	v.Truncate(w)
}

// String renders a short preview for debugging.
func (v *Vector) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[%d]{", v.typ, v.Len())
	n := v.Len()
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.Get(i).String())
	}
	if v.Len() > 8 {
		b.WriteString(", …")
	}
	b.WriteString("}")
	return b.String()
}
