package datacell_test

// One testing.B benchmark per experiment in DESIGN.md §3. The dcbench
// command prints the full paper-style tables; these benches make the same
// code paths measurable with `go test -bench`.

import (
	"context"
	"fmt"
	"testing"

	datacell "repro"
	"repro/internal/algebra"
	"repro/internal/baseline"
	"repro/internal/linearroad"
	"repro/internal/vector"
)

func intRows(n, domain int) [][]datacell.Value {
	rows := make([][]datacell.Value, n)
	x := uint64(88172645463325252)
	for i := range rows {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		rows[i] = []datacell.Value{datacell.Int(int64(x % uint64(domain)))}
	}
	return rows
}

func mustEngine(b *testing.B, stmts ...string) *datacell.Engine {
	b.Helper()
	eng := datacell.New(datacell.Config{})
	for _, s := range stmts {
		if _, err := eng.Exec(context.Background(), s); err != nil {
			b.Fatal(err)
		}
	}
	return eng
}

// BenchmarkF1Pipeline measures the Figure-1 pipeline: one continuous
// range filter from ingestion to delivery.
func BenchmarkF1Pipeline(b *testing.B) {
	eng := mustEngine(b, "CREATE BASKET s (v INT)")
	if _, err := eng.RegisterContinuous("q",
		"SELECT * FROM [SELECT * FROM s] AS x WHERE x.v >= 250 AND x.v < 750",
		datacell.WithSQLPolling()); err != nil {
		b.Fatal(err)
	}
	const batch = 10_000
	rows := intRows(batch, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Ingest(context.Background(), "s", rows); err != nil {
			b.Fatal(err)
		}
		eng.Drain()
	}
	b.SetBytes(batch * 8)
}

// BenchmarkE1Strategies compares separate vs shared baskets at several
// standing-query counts (experiment E1).
func BenchmarkE1Strategies(b *testing.B) {
	for _, nq := range []int{1, 8, 32} {
		for _, strat := range []datacell.Strategy{datacell.SeparateBaskets, datacell.SharedBaskets} {
			b.Run(fmt.Sprintf("queries=%d/%v", nq, strat), func(b *testing.B) {
				eng := mustEngine(b, "CREATE BASKET s (v INT)")
				for i := 0; i < nq; i++ {
					if _, err := eng.RegisterContinuous(fmt.Sprintf("q%d", i),
						"SELECT * FROM [SELECT * FROM s] AS x WHERE x.v >= 100 AND x.v < 200",
						datacell.WithStrategy(strat), datacell.WithSQLPolling()); err != nil {
						b.Fatal(err)
					}
				}
				const batch = 5_000
				rows := intRows(batch, 1000)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := eng.Ingest(context.Background(), "s", rows); err != nil {
						b.Fatal(err)
					}
					eng.Drain()
				}
				b.SetBytes(batch * 8)
			})
		}
	}
}

// BenchmarkE2Batch measures bulk processing across scheduler batch sizes;
// BenchmarkE2TupleAtATime is the baseline comparator (experiment E2).
func BenchmarkE2Batch(b *testing.B) {
	for _, batch := range []int{1, 100, 10_000} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			eng := mustEngine(b, "CREATE BASKET s (v INT)")
			if _, err := eng.RegisterContinuous("q",
				"SELECT * FROM [SELECT * FROM s] AS x WHERE x.v >= 100 AND x.v < 200",
				datacell.WithSQLPolling()); err != nil {
				b.Fatal(err)
			}
			rows := intRows(batch, 1000)
			b.ResetTimer()
			total := 0
			for i := 0; i < b.N; i++ {
				if err := eng.Ingest(context.Background(), "s", rows); err != nil {
					b.Fatal(err)
				}
				eng.Drain()
				total += batch
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}

// BenchmarkE2TupleAtATime is the tuple-at-a-time DSMS baseline.
func BenchmarkE2TupleAtATime(b *testing.B) {
	be := baseline.New()
	if err := be.Subscribe("s", &baseline.Query{
		Name: "q",
		Ops: []baseline.Operator{&baseline.RangeFilter{
			Attr: 0, Lo: vector.NewInt(100), Hi: vector.NewInt(200),
		}},
	}); err != nil {
		b.Fatal(err)
	}
	tuple := baseline.Tuple{vector.NewInt(150)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		be.Push("s", tuple)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkE3Cascade measures the disjoint-range cascade against the
// shared-basket arrangement (experiment E3).
func BenchmarkE3Cascade(b *testing.B) {
	const k = 8
	b.Run("cascade", func(b *testing.B) {
		eng := mustEngine(b, "CREATE BASKET s (v INT)")
		preds := make([]datacell.CascadePredicate, k)
		for i := range preds {
			preds[i] = datacell.CascadePredicate{
				Attr: "v", Lo: datacell.Int(int64(i * 10)), Hi: datacell.Int(int64((i + 1) * 10)),
			}
		}
		c, err := eng.RegisterCascade("c", "s", preds)
		if err != nil {
			b.Fatal(err)
		}
		const batch = 5_000
		rows := intRows(batch, 80)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.Ingest(context.Background(), "s", rows); err != nil {
				b.Fatal(err)
			}
			eng.Drain()
			for st := 0; st < c.Stages(); st++ {
				for {
					select {
					case <-c.Subscription(st).C():
						continue
					default:
					}
					break
				}
			}
		}
		b.SetBytes(batch * 8)
	})
	b.Run("shared", func(b *testing.B) {
		eng := mustEngine(b, "CREATE BASKET s (v INT)")
		for i := 0; i < k; i++ {
			if _, err := eng.RegisterContinuous(fmt.Sprintf("q%d", i),
				fmt.Sprintf("SELECT * FROM [SELECT * FROM s] AS x WHERE x.v >= %d AND x.v < %d", i*10, (i+1)*10),
				datacell.WithStrategy(datacell.SharedBaskets), datacell.WithSQLPolling()); err != nil {
				b.Fatal(err)
			}
		}
		const batch = 5_000
		rows := intRows(batch, 80)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.Ingest(context.Background(), "s", rows); err != nil {
				b.Fatal(err)
			}
			eng.Drain()
		}
		b.SetBytes(batch * 8)
	})
}

// BenchmarkE4Window compares window re-evaluation with incremental
// basic-window evaluation (experiment E4).
func BenchmarkE4Window(b *testing.B) {
	for _, mode := range []datacell.WindowMode{datacell.ReEvaluate, datacell.Incremental} {
		b.Run(mode.String(), func(b *testing.B) {
			eng := mustEngine(b, "CREATE BASKET s (v INT)")
			if _, err := eng.RegisterContinuous("w",
				"SELECT SUM(x.v) AS s, AVG(x.v) AS a, MIN(x.v) AS lo, MAX(x.v) AS hi FROM [SELECT * FROM s] AS x WINDOW ROWS 8000 SLIDE 1000",
				datacell.WithWindowMode(mode), datacell.WithSQLPolling()); err != nil {
				b.Fatal(err)
			}
			const batch = 4_000
			rows := intRows(batch, 1000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eng.Ingest(context.Background(), "s", rows); err != nil {
					b.Fatal(err)
				}
				eng.Drain()
			}
			b.SetBytes(batch * 8)
		})
	}
}

// BenchmarkE5LinearRoad plays one simulated Linear Road second per
// iteration through the full pipeline (experiment E5).
func BenchmarkE5LinearRoad(b *testing.B) {
	cfg := linearroad.GenConfig{
		XWays: 1, VehiclesPerXWay: 300, DurationSec: 600, Seed: 42, AccidentEverySec: 120,
	}
	recs := linearroad.Generate(cfg)
	bySecond := make([][]linearroad.Record, cfg.DurationSec)
	for _, r := range recs {
		bySecond[r.Time] = append(bySecond[r.Time], r)
	}
	sys, err := linearroad.NewSystem()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	reports := 0
	for i := 0; i < b.N; i++ {
		t := i % cfg.DurationSec
		if i > 0 && t == 0 {
			// Simulated time may not go backwards: fresh system per cycle.
			b.StopTimer()
			sys, err = linearroad.NewSystem()
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if err := sys.Feed(int64(t), bySecond[t]); err != nil {
			b.Fatal(err)
		}
		reports += len(bySecond[t])
	}
	b.ReportMetric(float64(reports)/b.Elapsed().Seconds(), "reports/s")
}

// BenchmarkE6IngestToResult measures end-to-end latency of a single small
// batch through a standing aggregate (experiment E6's unit operation).
func BenchmarkE6IngestToResult(b *testing.B) {
	eng := mustEngine(b, "CREATE BASKET s (v INT)")
	if _, err := eng.RegisterContinuous("q",
		"SELECT COUNT(*) AS n FROM [SELECT * FROM s] AS x",
		datacell.WithSQLPolling()); err != nil {
		b.Fatal(err)
	}
	rows := intRows(100, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Ingest(context.Background(), "s", rows); err != nil {
			b.Fatal(err)
		}
		eng.Drain()
	}
}

// BenchmarkE7PredicateWindow compares consume-all (q1) with a predicate
// window (q2) per the paper's §2.6 queries (experiment E7). The predicate
// window's basket is bounded here (all tuples eventually qualify) so the
// steady-state cost is comparable.
func BenchmarkE7PredicateWindow(b *testing.B) {
	for _, tc := range []struct {
		name, query string
	}{
		{"q1-consume-all", "SELECT * FROM [SELECT * FROM s] AS x WHERE x.v < 500 AND x.v % 2 = 0"},
		{"q2-predicate-window", "SELECT * FROM [SELECT * FROM s WHERE v < 500] AS x WHERE x.v % 2 = 0"},
	} {
		b.Run(tc.name, func(b *testing.B) {
			eng := mustEngine(b, "CREATE BASKET s (v INT)")
			if _, err := eng.RegisterContinuous("q", tc.query, datacell.WithSQLPolling()); err != nil {
				b.Fatal(err)
			}
			const batch = 5_000
			rows := intRows(batch, 500) // every tuple falls inside the window
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eng.Ingest(context.Background(), "s", rows); err != nil {
					b.Fatal(err)
				}
				eng.Drain()
			}
			b.SetBytes(batch * 8)
		})
	}
}

// BenchmarkAblationSharedFactory compares N independent shared-basket
// queries with the §3.2 shared-factory split (common predicate evaluated
// once, residuals over the admitted subset).
func BenchmarkAblationSharedFactory(b *testing.B) {
	const k = 8
	b.Run("independent", func(b *testing.B) {
		eng := mustEngine(b, "CREATE BASKET s (v INT)")
		for i := 0; i < k; i++ {
			if _, err := eng.RegisterContinuous(fmt.Sprintf("q%d", i),
				fmt.Sprintf("SELECT * FROM [SELECT * FROM s] AS x WHERE x.v >= 100 AND x.v < 300 AND x.v %% %d = 0", i+2),
				datacell.WithStrategy(datacell.SharedBaskets), datacell.WithSQLPolling()); err != nil {
				b.Fatal(err)
			}
		}
		const batch = 5_000
		rows := intRows(batch, 1000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.Ingest(context.Background(), "s", rows); err != nil {
				b.Fatal(err)
			}
			eng.Drain()
		}
		b.SetBytes(batch * 8)
	})
	b.Run("shared-factory", func(b *testing.B) {
		eng := mustEngine(b, "CREATE BASKET s (v INT)")
		members := make([]datacell.GroupMember, k)
		for i := range members {
			members[i] = datacell.GroupMember{
				Name:     fmt.Sprintf("m%d", i),
				Residual: fmt.Sprintf("x.v %% %d = 0", i+2),
			}
		}
		if _, err := eng.RegisterFilterGroup("g", "s", "x.v >= 100 AND x.v < 300", members); err != nil {
			b.Fatal(err)
		}
		const batch = 5_000
		rows := intRows(batch, 1000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.Ingest(context.Background(), "s", rows); err != nil {
				b.Fatal(err)
			}
			eng.Drain()
		}
		b.SetBytes(batch * 8)
	})
}

// BenchmarkKernelSelect isolates the kernel's vectorized range selection —
// the MAL-style primitive every continuous filter compiles to (ablation:
// kernel cost without engine overhead).
func BenchmarkKernelSelect(b *testing.B) {
	col := vector.NewWithCap(vector.Int64, 100_000)
	x := uint64(2463534242)
	for i := 0; i < 100_000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		col.AppendInt(int64(x % 1000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands := algebra.ThetaSelect(col, nil, algebra.Ge, vector.NewInt(250))
		cands = algebra.ThetaSelect(col, cands, algebra.Lt, vector.NewInt(750))
		if len(cands) == 0 {
			b.Fatal("empty selection")
		}
	}
	b.SetBytes(100_000 * 8)
}

// BenchmarkKernelGroupAggregate isolates grouped aggregation (ablation).
func BenchmarkKernelGroupAggregate(b *testing.B) {
	n := 100_000
	keys := vector.NewWithCap(vector.Int64, n)
	vals := vector.NewWithCap(vector.Int64, n)
	x := uint64(2463534242)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		keys.AppendInt(int64(x % 64))
		vals.AppendInt(int64(x % 1000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gids, ng, _ := algebra.Group([]*vector.Vector{keys}, nil)
		sums := algebra.Aggregate(algebra.AggSum, vals, nil, gids, ng)
		if sums.Len() != ng {
			b.Fatal("bad aggregate")
		}
	}
	b.SetBytes(int64(n) * 16)
}
