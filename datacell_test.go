package datacell_test

import (
	"context"
	"errors"
	"testing"
	"time"

	datacell "repro"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	ctx := context.Background()
	clk := datacell.NewManualClock(0)
	eng, err := datacell.Open(ctx, datacell.Config{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	datacell.MustExec(eng, "CREATE BASKET trades (sym VARCHAR, price DOUBLE)")

	// The SQL-first lifecycle: the continuous query is a DDL statement.
	datacell.MustExec(eng, `CREATE CONTINUOUS QUERY spikes AS
		SELECT * FROM [SELECT * FROM trades] AS t WHERE t.price > 100`)
	q, err := eng.Query("spikes")
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Ingest(ctx, "trades", [][]datacell.Value{
		{datacell.Str("ACME"), datacell.Float(99.5)},
		{datacell.Str("ACME"), datacell.Float(101.5)},
		{datacell.Str("WID"), datacell.Float(250)},
	}); err != nil {
		t.Fatal(err)
	}
	eng.Drain()
	rel, err := q.Subscription().Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 2 {
		t.Errorf("rows = %d", rel.NumRows())
	}
}

func TestPublicAPIValueHelpers(t *testing.T) {
	if datacell.Int(5).I != 5 || datacell.Float(2.5).F != 2.5 ||
		datacell.Str("x").S != "x" || !datacell.BoolVal(true).B ||
		datacell.TS(9).I != 9 || !datacell.Null(datacell.Int64).Null {
		t.Error("value helpers broken")
	}
}

func TestPublicAPISchemaHelpers(t *testing.T) {
	ctx := context.Background()
	eng := datacell.New(datacell.Config{})
	s := datacell.NewSchema(
		datacell.Col("a", datacell.Int64),
		datacell.Col("b", datacell.String),
	)
	if err := eng.CreateStream("s", s); err != nil {
		t.Fatal(err)
	}
	if err := eng.Ingest(ctx, "s", [][]datacell.Value{{datacell.Int(1), datacell.Str("x")}}); err != nil {
		t.Fatal(err)
	}
	rel := datacell.MustExec(eng, "SELECT COUNT(*) FROM s")
	if rel.Cols[0].Get(0).I != 1 {
		t.Errorf("count = %v", rel.Row(0))
	}
}

func TestPublicAPIWindowModes(t *testing.T) {
	ctx := context.Background()
	eng := datacell.New(datacell.Config{Clock: datacell.NewManualClock(0)})
	datacell.MustExec(eng, "CREATE BASKET m (v INT)")
	datacell.MustExec(eng, `CREATE CONTINUOUS QUERY re WITH (window_mode = reeval) AS
		SELECT SUM(S.v) AS total FROM [SELECT * FROM m] AS S WINDOW ROWS 2 SLIDE 2`)
	datacell.MustExec(eng, `CREATE CONTINUOUS QUERY inc WITH (window_mode = incremental) AS
		SELECT SUM(S.v) AS total FROM [SELECT * FROM m] AS S WINDOW ROWS 2 SLIDE 2`)
	_ = eng.Ingest(ctx, "m", [][]datacell.Value{{datacell.Int(3)}, {datacell.Int(4)}})
	eng.Drain()
	for _, name := range []string{"re", "inc"} {
		q, _ := eng.Query(name)
		select {
		case rel := <-q.Subscription().C():
			if rel.Cols[0].Get(0).I != 7 {
				t.Errorf("%s: sum = %v", name, rel.Row(0))
			}
		default:
			t.Errorf("%s: no window result", name)
		}
	}
}

func TestPublicAPICascade(t *testing.T) {
	ctx := context.Background()
	eng := datacell.New(datacell.Config{Clock: datacell.NewManualClock(0)})
	datacell.MustExec(eng, "CREATE BASKET s (v INT)")
	c, err := eng.RegisterCascade("c", "s", []datacell.CascadePredicate{
		{Attr: "v", Lo: datacell.Int(0), Hi: datacell.Int(10)},
		{Attr: "v", Lo: datacell.Int(10), Hi: datacell.Int(20)},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = eng.Ingest(ctx, "s", [][]datacell.Value{
		{datacell.Int(5)}, {datacell.Int(15)}, {datacell.Int(25)},
	})
	eng.Drain()
	if c.Processed(0) != 3 || c.Processed(1) != 2 {
		t.Errorf("processed = %d, %d", c.Processed(0), c.Processed(1))
	}
}

func TestMustExecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustExec should panic on bad SQL")
		}
	}()
	eng := datacell.New(datacell.Config{})
	datacell.MustExec(eng, "NOT SQL AT ALL")
}

// --- typed errors and lifecycle ------------------------------------------

func TestTypedErrorsUnknownAndDuplicate(t *testing.T) {
	ctx := context.Background()
	eng := datacell.New(datacell.Config{})
	if err := eng.Ingest(ctx, "nosuch", nil); !errors.Is(err, datacell.ErrUnknownStream) {
		t.Errorf("Ingest unknown stream: %v", err)
	}
	if _, err := eng.Query("nosuch"); !errors.Is(err, datacell.ErrUnknownQuery) {
		t.Errorf("Query unknown: %v", err)
	}
	datacell.MustExec(eng, "CREATE BASKET s (v INT)")
	if _, err := eng.Exec(ctx, "CREATE BASKET s (v INT)"); !errors.Is(err, datacell.ErrDuplicateName) {
		t.Errorf("duplicate basket: %v", err)
	}
	datacell.MustExec(eng, "CREATE CONTINUOUS QUERY q AS SELECT * FROM [SELECT * FROM s] AS x")
	_, err := eng.Exec(ctx, "CREATE CONTINUOUS QUERY q AS SELECT * FROM [SELECT * FROM s] AS x")
	if !errors.Is(err, datacell.ErrDuplicateQuery) {
		t.Errorf("duplicate query: %v", err)
	}
	if _, err := eng.Exec(ctx, "SELECT * FROM [SELECT * FROM s] AS x"); !errors.Is(err, datacell.ErrContinuousViaExec) {
		t.Errorf("continuous via Exec: %v", err)
	}
	if _, err := eng.Exec(ctx, "DROP BASKET s"); !errors.Is(err, datacell.ErrStreamInUse) {
		t.Errorf("drop in-use stream: %v", err)
	}
	if _, err := eng.Exec(ctx,
		"CREATE CONTINUOUS QUERY bad WITH (strategy = sideways) AS SELECT * FROM [SELECT * FROM s] AS x",
	); !errors.Is(err, datacell.ErrInvalidOption) {
		t.Errorf("invalid option: %v", err)
	}
}

func TestTypedErrorEngineStoppedAndIdempotentStop(t *testing.T) {
	ctx := context.Background()
	eng := datacell.New(datacell.Config{})
	datacell.MustExec(eng, "CREATE BASKET s (v INT)")
	// Stop before Start is safe, and Stop is idempotent.
	if err := eng.Stop(ctx); err != nil {
		t.Fatalf("stop before start: %v", err)
	}
	if err := eng.Stop(ctx); err != nil {
		t.Fatalf("double stop: %v", err)
	}
	if err := eng.Start(ctx); !errors.Is(err, datacell.ErrEngineStopped) {
		t.Errorf("start after stop: %v", err)
	}
	if _, err := eng.Exec(ctx, "SELECT COUNT(*) FROM s"); !errors.Is(err, datacell.ErrEngineStopped) {
		t.Errorf("exec after stop: %v", err)
	}
	if err := eng.Ingest(ctx, "s", [][]datacell.Value{{datacell.Int(1)}}); !errors.Is(err, datacell.ErrEngineStopped) {
		t.Errorf("ingest after stop: %v", err)
	}
}

func TestTypedErrorParsePosition(t *testing.T) {
	eng := datacell.New(datacell.Config{})
	_, err := eng.Exec(context.Background(), "SELECT *\nFROM WHERE")
	if err == nil {
		t.Fatal("expected parse error")
	}
	var pe *datacell.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("not a ParseError: %v", err)
	}
	if pe.Line != 2 || pe.Col < 1 {
		t.Errorf("position = line %d col %d", pe.Line, pe.Col)
	}
}

func TestContextCancellation(t *testing.T) {
	eng := datacell.New(datacell.Config{})
	datacell.MustExec(eng, "CREATE BASKET s (v INT)")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Exec(ctx, "SELECT COUNT(*) FROM s"); !errors.Is(err, context.Canceled) {
		t.Errorf("exec: %v", err)
	}
	if err := eng.Ingest(ctx, "s", [][]datacell.Value{{datacell.Int(1)}}); !errors.Is(err, context.Canceled) {
		t.Errorf("ingest: %v", err)
	}
	// The engine itself is still usable under a live context.
	if _, err := eng.Exec(context.Background(), "SELECT COUNT(*) FROM s"); err != nil {
		t.Errorf("exec after cancelled call: %v", err)
	}
}

func TestOpenBoundsEngineLifetime(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	eng, err := datacell.Open(ctx, datacell.Config{})
	if err != nil {
		t.Fatal(err)
	}
	datacell.MustExec(eng, "CREATE BASKET s (v INT)")
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := eng.Exec(context.Background(), "SELECT COUNT(*) FROM s"); errors.Is(err, datacell.ErrEngineStopped) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("engine did not stop after context cancellation")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubscriptionRecvAndClose(t *testing.T) {
	ctx := context.Background()
	eng := datacell.New(datacell.Config{Clock: datacell.NewManualClock(0)})
	datacell.MustExec(eng, "CREATE BASKET s (v INT)")
	datacell.MustExec(eng, "CREATE CONTINUOUS QUERY q AS SELECT * FROM [SELECT * FROM s] AS x")
	q, _ := eng.Query("q")
	sub := q.Subscription()

	// Recv honors ctx cancellation while waiting.
	waitCtx, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer cancel()
	if _, err := sub.Recv(waitCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("recv on empty: %v", err)
	}

	if err := eng.Ingest(ctx, "s", [][]datacell.Value{{datacell.Int(1)}}); err != nil {
		t.Fatal(err)
	}
	eng.Drain()
	if rel, err := sub.Recv(ctx); err != nil || rel.NumRows() != 1 {
		t.Fatalf("recv = %v, %v", rel, err)
	}

	// Close detaches the emitter but leaves the query (and engine) running.
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Recv(ctx); !errors.Is(err, datacell.ErrSubscriptionClosed) {
		t.Errorf("recv after close: %v", err)
	}
	if !errors.Is(sub.Err(), datacell.ErrSubscriptionClosed) {
		t.Errorf("err after close: %v", sub.Err())
	}
	if err := eng.Ingest(ctx, "s", [][]datacell.Value{{datacell.Int(2)}}); err != nil {
		t.Fatal(err)
	}
	eng.Drain()
	if got := q.Stats().TuplesIn; got != 2 {
		t.Errorf("query stopped processing after subscription close: in = %d", got)
	}
	// Results keep accumulating in the output basket for SQL polling.
	rel := datacell.MustExec(eng, "SELECT COUNT(*) FROM q_out")
	if rel.Cols[0].Get(0).I != 1 {
		t.Errorf("q_out rows = %v", rel.Row(0))
	}
}

func TestBackpressureDropOldest(t *testing.T) {
	ctx := context.Background()
	eng := datacell.New(datacell.Config{Clock: datacell.NewManualClock(0)})
	datacell.MustExec(eng, "CREATE BASKET s (v INT)")
	datacell.MustExec(eng, `CREATE CONTINUOUS QUERY q
		WITH (depth = 1, backpressure = drop_oldest) AS
		SELECT * FROM [SELECT * FROM s] AS x`)
	q, _ := eng.Query("q")
	for i := 0; i < 5; i++ {
		if err := eng.Ingest(ctx, "s", [][]datacell.Value{{datacell.Int(int64(i))}}); err != nil {
			t.Fatal(err)
		}
		eng.Drain()
	}
	sub := q.Subscription()
	if sub.Dropped() == 0 {
		t.Error("expected dropped batches under depth=1 drop_oldest")
	}
	// The surviving batch is the freshest one.
	rel, err := sub.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cols[0].Get(0).I != 4 {
		t.Errorf("freshest = %v", rel.Row(0))
	}
}
