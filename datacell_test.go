package datacell_test

import (
	"testing"

	datacell "repro"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	clk := datacell.NewManualClock(0)
	eng := datacell.New(datacell.Config{Clock: clk})
	datacell.MustExec(eng, "CREATE BASKET trades (sym VARCHAR, price DOUBLE)")

	q, err := eng.RegisterContinuous("spikes",
		"SELECT * FROM [SELECT * FROM trades] AS t WHERE t.price > 100")
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Ingest("trades", [][]datacell.Value{
		{datacell.Str("ACME"), datacell.Float(99.5)},
		{datacell.Str("ACME"), datacell.Float(101.5)},
		{datacell.Str("WID"), datacell.Float(250)},
	}); err != nil {
		t.Fatal(err)
	}
	eng.Drain()
	select {
	case rel := <-q.Results():
		if rel.NumRows() != 2 {
			t.Errorf("rows = %d", rel.NumRows())
		}
	default:
		t.Fatal("no results")
	}
}

func TestPublicAPIValueHelpers(t *testing.T) {
	if datacell.Int(5).I != 5 || datacell.Float(2.5).F != 2.5 ||
		datacell.Str("x").S != "x" || !datacell.BoolVal(true).B ||
		datacell.TS(9).I != 9 || !datacell.Null(datacell.Int64).Null {
		t.Error("value helpers broken")
	}
}

func TestPublicAPISchemaHelpers(t *testing.T) {
	eng := datacell.New(datacell.Config{})
	s := datacell.NewSchema(
		datacell.Col("a", datacell.Int64),
		datacell.Col("b", datacell.String),
	)
	if err := eng.CreateStream("s", s); err != nil {
		t.Fatal(err)
	}
	if err := eng.Ingest("s", [][]datacell.Value{{datacell.Int(1), datacell.Str("x")}}); err != nil {
		t.Fatal(err)
	}
	rel := datacell.MustExec(eng, "SELECT COUNT(*) FROM s")
	if rel.Cols[0].Get(0).I != 1 {
		t.Errorf("count = %v", rel.Row(0))
	}
}

func TestPublicAPIWindowModes(t *testing.T) {
	eng := datacell.New(datacell.Config{Clock: datacell.NewManualClock(0)})
	datacell.MustExec(eng, "CREATE BASKET m (v INT)")
	for _, tc := range []struct {
		name string
		mode datacell.WindowMode
	}{{"re", datacell.ReEvaluate}, {"inc", datacell.Incremental}} {
		q, err := eng.RegisterContinuous(tc.name,
			"SELECT SUM(S.v) AS total FROM [SELECT * FROM m] AS S WINDOW ROWS 2 SLIDE 2",
			datacell.WithWindowMode(tc.mode))
		if err != nil {
			t.Fatal(err)
		}
		_ = q
	}
	_ = eng.Ingest("m", [][]datacell.Value{{datacell.Int(3)}, {datacell.Int(4)}})
	eng.Drain()
	for _, name := range []string{"re", "inc"} {
		q, _ := eng.Query(name)
		select {
		case rel := <-q.Results():
			if rel.Cols[0].Get(0).I != 7 {
				t.Errorf("%s: sum = %v", name, rel.Row(0))
			}
		default:
			t.Errorf("%s: no window result", name)
		}
	}
}

func TestPublicAPICascade(t *testing.T) {
	eng := datacell.New(datacell.Config{Clock: datacell.NewManualClock(0)})
	datacell.MustExec(eng, "CREATE BASKET s (v INT)")
	c, err := eng.RegisterCascade("c", "s", []datacell.CascadePredicate{
		{Attr: "v", Lo: datacell.Int(0), Hi: datacell.Int(10)},
		{Attr: "v", Lo: datacell.Int(10), Hi: datacell.Int(20)},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = eng.Ingest("s", [][]datacell.Value{
		{datacell.Int(5)}, {datacell.Int(15)}, {datacell.Int(25)},
	})
	eng.Drain()
	if c.Processed(0) != 3 || c.Processed(1) != 2 {
		t.Errorf("processed = %d, %d", c.Processed(0), c.Processed(1))
	}
}

func TestMustExecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustExec should panic on bad SQL")
		}
	}()
	eng := datacell.New(datacell.Config{})
	datacell.MustExec(eng, "NOT SQL AT ALL")
}
